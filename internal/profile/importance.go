package profile

import (
	"fmt"
	"sort"

	"qosneg/internal/cost"
	"qosneg/internal/qos"
)

// Point is one user-specified anchor of an importance curve: the importance
// Y of the QoS parameter value X (e.g. X=25 frames/s, Y=9).
type Point struct {
	X int     `json:"x"`
	Y float64 `json:"y"`
}

// Curve is a piecewise-linear importance function over an integer QoS
// parameter. Section 5.2.2(a): "the user specifies the importance factors
// for only a specific set of values ... If the user selects a frame rate
// different from these specific values, the corresponding importance factor
// is computed assuming that the importance increases (or decreases)
// linearly from frozen rate to TV rate, and from TV rate to HDTV rate."
// Outside the anchored range the curve is clamped to the boundary values.
type Curve struct {
	Points []Point `json:"points"`
}

// NewCurve builds a curve from anchors, sorting them by X.
func NewCurve(points ...Point) Curve {
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].X < ps[j].X })
	return Curve{Points: ps}
}

// Validate reports an error for duplicate anchor positions.
func (c Curve) Validate() error {
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].X == c.Points[i-1].X {
			return fmt.Errorf("importance curve: duplicate anchor at %d", c.Points[i].X)
		}
		if c.Points[i].X < c.Points[i-1].X {
			return fmt.Errorf("importance curve: anchors not sorted at %d", c.Points[i].X)
		}
	}
	return nil
}

// Eval returns the importance of value x: the anchored value when x is an
// anchor, the linear interpolation between the surrounding anchors
// otherwise, clamped at the extreme anchors. An empty curve is identically
// zero.
func (c Curve) Eval(x int) float64 {
	n := len(c.Points)
	if n == 0 {
		return 0
	}
	if x <= c.Points[0].X {
		return c.Points[0].Y
	}
	if x >= c.Points[n-1].X {
		return c.Points[n-1].Y
	}
	i := sort.Search(n, func(i int) bool { return c.Points[i].X >= x })
	lo, hi := c.Points[i-1], c.Points[i]
	if hi.X == x {
		return hi.Y
	}
	frac := float64(x-lo.X) / float64(hi.X-lo.X)
	return lo.Y + frac*(hi.Y-lo.Y)
}

// Importance is Section 3's importance profile: per-parameter importance
// factors plus the cost importance ("the importance of a cost of 1$").
// Zero-valued maps and curves contribute zero importance, matching the
// paper's third classification example where all QoS importances are 0.
type Importance struct {
	// VideoColor maps each color quality of Figure 2 to its importance.
	VideoColor map[qos.ColorQuality]float64 `json:"videoColor,omitempty"`
	// FrameRate anchors importance at the Figure 2 frame rates (frozen,
	// TV, HDTV); other rates interpolate linearly.
	FrameRate Curve `json:"frameRate"`
	// Resolution anchors importance at the Figure 2 resolutions.
	Resolution Curve `json:"resolution"`
	// AudioGrade maps the Figure 2 audio qualities to their importance.
	AudioGrade map[qos.AudioGrade]float64 `json:"audioGrade,omitempty"`
	// Language expresses preferences such as "french is more important
	// than english" (importance example (4) of Section 3).
	Language map[qos.Language]float64 `json:"language,omitempty"`
	// ImageColor and ImageResolution weigh still-image quality.
	ImageColor      map[qos.ColorQuality]float64 `json:"imageColor,omitempty"`
	ImageResolution Curve                        `json:"imageResolution"`
	// CostPerDollar is Section 5.2.2(b)'s cost importance: the importance
	// of one dollar of price. The cost importance of an offer is
	// CostPerDollar × offer cost.
	CostPerDollar float64 `json:"costPerDollar"`
}

// QoS returns the QoS importance of a single monomedia setting: the sum of
// the importance values of its parameter values (Section 5.2.2(a): "we have
// only to sum the importance values which correspond to the values of the
// QoS parameters").
func (im Importance) QoS(s qos.Setting) float64 {
	switch {
	case s.Video != nil:
		return im.VideoColor[s.Video.Color] +
			im.FrameRate.Eval(s.Video.FrameRate) +
			im.Resolution.Eval(s.Video.Resolution)
	case s.Audio != nil:
		return im.AudioGrade[s.Audio.Grade] + im.Language[s.Audio.Language]
	case s.Image != nil:
		return im.ImageColor[s.Image.Color] + im.ImageResolution.Eval(s.Image.Resolution)
	case s.Text != nil:
		return im.Language[s.Text.Language]
	}
	return 0
}

// Cost returns the cost importance of a price: CostPerDollar × price in
// dollars (Section 5.2.2(b)).
func (im Importance) Cost(m cost.Money) float64 { return im.CostPerDollar * m.Float() }

// Overall returns the overall importance factor of an offer with the given
// monomedia settings and total cost (Section 5.2.2(c)):
// overall_importance = QoS_importance − cost_importance.
func (im Importance) Overall(settings []qos.Setting, price cost.Money) float64 {
	var q float64
	for _, s := range settings {
		q += im.QoS(s)
	}
	return q - im.Cost(price)
}

// Validate checks the curves.
func (im Importance) Validate() error {
	for _, c := range []Curve{im.FrameRate, im.Resolution, im.ImageResolution} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (im Importance) clone() Importance {
	c := im
	c.VideoColor = cloneMap(im.VideoColor)
	c.AudioGrade = cloneMap(im.AudioGrade)
	c.Language = cloneMap(im.Language)
	c.ImageColor = cloneMap(im.ImageColor)
	c.FrameRate = NewCurve(im.FrameRate.Points...)
	c.Resolution = NewCurve(im.Resolution.Points...)
	c.ImageResolution = NewCurve(im.ImageResolution.Points...)
	return c
}

func cloneMap[K comparable](m map[K]float64) map[K]float64 {
	if m == nil {
		return nil
	}
	out := make(map[K]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// DefaultImportance returns the default importance values the profile
// manager associates with each QoS parameter value of Figure 2 ("We
// associate a default importance value for each QoS parameter value.
// However, at any time during the negotiation phase, the user may modify
// these values"). The defaults rank quality monotonically and value QoS
// slightly above cost.
func DefaultImportance() Importance {
	return Importance{
		VideoColor: map[qos.ColorQuality]float64{
			qos.BlackWhite: 2, qos.Grey: 6, qos.Color: 9, qos.SuperColor: 10,
		},
		FrameRate: NewCurve(
			Point{X: qos.FrozenRate, Y: 1},
			Point{X: qos.TVRate, Y: 9},
			Point{X: qos.HDTVRate, Y: 10},
		),
		Resolution: NewCurve(
			Point{X: qos.MinResolution, Y: 1},
			Point{X: qos.TVResolution, Y: 9},
			Point{X: qos.HDTVResolution, Y: 10},
		),
		AudioGrade: map[qos.AudioGrade]float64{
			qos.TelephoneQuality: 5, qos.CDQuality: 9,
		},
		Language: map[qos.Language]float64{
			qos.English: 5, qos.French: 5,
		},
		ImageColor: map[qos.ColorQuality]float64{
			qos.BlackWhite: 1, qos.Grey: 3, qos.Color: 5, qos.SuperColor: 6,
		},
		ImageResolution: NewCurve(
			Point{X: qos.MinResolution, Y: 1},
			Point{X: qos.TVResolution, Y: 4},
			Point{X: qos.HDTVResolution, Y: 5},
		),
		CostPerDollar: 1,
	}
}
