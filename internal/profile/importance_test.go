package profile

import (
	"testing"
	"testing/quick"

	"qosneg/internal/cost"
	"qosneg/internal/qos"
)

// paperImportance reproduces the importance factors of the Section 5.2.2
// classification example: color 9, grey 6, black&white 2, TV resolution 9,
// 25 frames/s 9, 15 frames/s 5, cost importance 4.
func paperImportance() Importance {
	return Importance{
		VideoColor: map[qos.ColorQuality]float64{
			qos.BlackWhite: 2, qos.Grey: 6, qos.Color: 9,
		},
		FrameRate:     NewCurve(Point{X: 15, Y: 5}, Point{X: 25, Y: 9}),
		Resolution:    NewCurve(Point{X: qos.TVResolution, Y: 9}),
		CostPerDollar: 4,
	}
}

func paperOffers() []struct {
	qos  qos.VideoQoS
	cost cost.Money
} {
	return []struct {
		qos  qos.VideoQoS
		cost cost.Money
	}{
		{qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 25, Resolution: qos.TVResolution}, cost.DollarsFloat(2.5)},
		{qos.VideoQoS{Color: qos.Color, FrameRate: 15, Resolution: qos.TVResolution}, cost.Dollars(4)},
		{qos.VideoQoS{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution}, cost.Dollars(3)},
		{qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}, cost.Dollars(5)},
	}
}

// TestPaperOIFSetting1 reproduces Section 5.2.2 example (1): OIFs 10, 7, 12, 7.
func TestPaperOIFSetting1(t *testing.T) {
	im := paperImportance()
	want := []float64{10, 7, 12, 7}
	for i, o := range paperOffers() {
		got := im.Overall([]qos.Setting{qos.VideoSetting(o.qos)}, o.cost)
		if got != want[i] {
			t.Errorf("offer%d OIF = %g, want %g", i+1, got, want[i])
		}
	}
}

// TestPaperOIFSetting2 reproduces example (2): cost importance 0 → OIFs
// 20, 23, 24, 27.
func TestPaperOIFSetting2(t *testing.T) {
	im := paperImportance()
	im.CostPerDollar = 0
	want := []float64{20, 23, 24, 27}
	for i, o := range paperOffers() {
		got := im.Overall([]qos.Setting{qos.VideoSetting(o.qos)}, o.cost)
		if got != want[i] {
			t.Errorf("offer%d OIF = %g, want %g", i+1, got, want[i])
		}
	}
}

// TestPaperOIFSetting3 reproduces example (3): all QoS importances 0, cost
// importance 4 → OIFs −10, −16, −12, −20.
func TestPaperOIFSetting3(t *testing.T) {
	im := Importance{CostPerDollar: 4}
	want := []float64{-10, -16, -12, -20}
	for i, o := range paperOffers() {
		got := im.Overall([]qos.Setting{qos.VideoSetting(o.qos)}, o.cost)
		if got != want[i] {
			t.Errorf("offer%d OIF = %g, want %g", i+1, got, want[i])
		}
	}
}

func TestCurveEval(t *testing.T) {
	c := NewCurve(Point{X: 1, Y: 1}, Point{X: 25, Y: 9}, Point{X: 60, Y: 10})
	cases := []struct {
		x    int
		want float64
	}{
		{1, 1}, {25, 9}, {60, 10}, // anchors
		{13, 5},         // midpoint of 1..25
		{0, 1}, {-5, 1}, // clamp low
		{61, 10}, {1000, 10}, // clamp high
		{42, 9 + 17.0/35}, // interpolation on the 25..60 segment
	}
	for _, tc := range cases {
		if got := c.Eval(tc.x); !close(got, tc.want) {
			t.Errorf("Eval(%d) = %g, want %g", tc.x, got, tc.want)
		}
	}
	if got := (Curve{}).Eval(25); got != 0 {
		t.Errorf("empty curve Eval = %g", got)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestCurveInterpolationDirection(t *testing.T) {
	// "importance increases (or decreases) linearly": a decreasing anchor
	// pair interpolates downward too.
	c := NewCurve(Point{X: 0, Y: 10}, Point{X: 10, Y: 0})
	if got := c.Eval(5); got != 5 {
		t.Errorf("Eval(5) = %g, want 5", got)
	}
}

func TestCurveValidate(t *testing.T) {
	if err := NewCurve(Point{X: 1, Y: 1}, Point{X: 2, Y: 2}).Validate(); err != nil {
		t.Errorf("valid curve rejected: %v", err)
	}
	if err := NewCurve(Point{X: 1, Y: 1}, Point{X: 1, Y: 2}).Validate(); err == nil {
		t.Error("duplicate anchor accepted")
	}
	unsorted := Curve{Points: []Point{{X: 5, Y: 1}, {X: 1, Y: 1}}}
	if err := unsorted.Validate(); err == nil {
		t.Error("unsorted curve accepted")
	}
}

func TestImportancePerMedia(t *testing.T) {
	im := DefaultImportance()
	audio := im.QoS(qos.AudioSetting(qos.AudioQoS{Grade: qos.CDQuality, Language: qos.French}))
	if audio != 9+5 {
		t.Errorf("audio importance = %g", audio)
	}
	text := im.QoS(qos.TextSetting(qos.TextQoS{Language: qos.English}))
	if text != 5 {
		t.Errorf("text importance = %g", text)
	}
	img := im.QoS(qos.ImageSetting(qos.ImageQoS{Color: qos.Color, Resolution: qos.TVResolution}))
	if img != 5+4 {
		t.Errorf("image importance = %g", img)
	}
	if im.QoS(qos.Setting{}) != 0 {
		t.Error("zero setting importance must be 0")
	}
}

func TestDefaultImportanceMonotone(t *testing.T) {
	im := DefaultImportance()
	colors := qos.ColorQualities()
	for i := 1; i < len(colors); i++ {
		if im.VideoColor[colors[i]] <= im.VideoColor[colors[i-1]] {
			t.Errorf("video color importance not increasing at %v", colors[i])
		}
	}
	if im.FrameRate.Eval(25) <= im.FrameRate.Eval(1) {
		t.Error("frame-rate importance not increasing")
	}
	if im.AudioGrade[qos.CDQuality] <= im.AudioGrade[qos.TelephoneQuality] {
		t.Error("audio importance not increasing")
	}
}

func TestCostImportance(t *testing.T) {
	im := Importance{CostPerDollar: 4}
	if got := im.Cost(cost.DollarsFloat(2.5)); got != 10 {
		t.Errorf("Cost(2.5$) = %g, want 10", got)
	}
	if got := im.Cost(0); got != 0 {
		t.Errorf("Cost(0) = %g", got)
	}
}

func TestImportanceClone(t *testing.T) {
	im := DefaultImportance()
	c := im.clone()
	c.VideoColor[qos.Color] = 99
	c.FrameRate.Points[0].Y = 99
	if im.VideoColor[qos.Color] == 99 {
		t.Error("clone shares the color map")
	}
	if im.FrameRate.Points[0].Y == 99 {
		t.Error("clone shares the frame-rate curve")
	}
}

// Property: Overall is monotone decreasing in cost for fixed settings and
// positive cost importance.
func TestOverallMonotoneInCost(t *testing.T) {
	im := DefaultImportance()
	s := []qos.Setting{qos.VideoSetting(qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: 480})}
	f := func(a, b uint16) bool {
		x, y := cost.Money(a), cost.Money(b)
		if x > y {
			x, y = y, x
		}
		return im.Overall(s, x) >= im.Overall(s, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: curve evaluation stays within the anchor range's min/max for
// any query point.
func TestCurveBoundedProperty(t *testing.T) {
	c := NewCurve(Point{X: 1, Y: 1}, Point{X: 25, Y: 9}, Point{X: 60, Y: 10})
	f := func(x int16) bool {
		y := c.Eval(int(x))
		return y >= 1 && y <= 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
