// Package profile implements the user-profile model of Section 3
// (Figure 2). A user profile describes user preferences in terms of (1) a
// QoS setting for video, audio, still images and text, (2) the cost the user
// is willing to pay, (3) time constraints such as the delivery time, and
// (4) importance factors. It consists of a MM profile with the desired
// values, a MM profile with the worst acceptable values, and an importance
// profile.
//
// The profile manager (package profilemgr) exposes these profiles through
// the QoS GUI; the QoS manager (package core) consumes them as the input to
// the negotiation procedure.
package profile

import (
	"fmt"
	"time"

	"qosneg/internal/cost"
	"qosneg/internal/qos"
)

// CostProfile is Figure 2's cost profile: the amount the user is willing to
// pay to play the requested document with the desired quality, and the
// service guarantee the price buys.
type CostProfile struct {
	// MaxCost is the most the user will pay for the document.
	MaxCost cost.Money `json:"maxCost"`
	// Guarantee selects guaranteed or best-effort delivery.
	Guarantee cost.Guarantee `json:"guarantee"`
}

// Validate reports an error for a negative budget.
func (c CostProfile) Validate() error {
	if c.MaxCost < 0 {
		return fmt.Errorf("cost profile: negative maximum cost %v", c.MaxCost)
	}
	return nil
}

// TimeProfile is Figure 2's time profile, "specified in terms of seconds":
// how long the user will wait for delivery to start and how long the
// reserved offer stays valid awaiting the user's confirmation.
type TimeProfile struct {
	// MaxStartDelay bounds the delay between confirmation and the start
	// of the presentation.
	MaxStartDelay time.Duration `json:"maxStartDelay,omitempty"`
	// ChoicePeriod is the confirmation window of Section 8: resources
	// stay reserved this long while the user decides; on time-out the
	// session is aborted. Zero selects the system default.
	ChoicePeriod time.Duration `json:"choicePeriod,omitempty"`
}

// Validate reports an error for negative time constraints.
func (t TimeProfile) Validate() error {
	if t.MaxStartDelay < 0 {
		return fmt.Errorf("time profile: negative start delay")
	}
	if t.ChoicePeriod < 0 {
		return fmt.Errorf("time profile: negative choice period")
	}
	return nil
}

// MMProfile is Figure 2's MM profile: per-media QoS settings plus the cost
// and time profiles. A nil media section means the user expresses no
// requirement for that medium (any quality is as good as any other).
type MMProfile struct {
	Video *qos.VideoQoS `json:"video,omitempty"`
	Audio *qos.AudioQoS `json:"audio,omitempty"`
	Image *qos.ImageQoS `json:"image,omitempty"`
	Text  *qos.TextQoS  `json:"text,omitempty"`
	Cost  CostProfile   `json:"cost"`
	Time  TimeProfile   `json:"time"`
}

// Setting returns the profile's QoS section for the given media kind as a
// qos.Setting, and false when the user expressed no requirement. Graphics
// share the image section.
func (p MMProfile) Setting(k qos.MediaKind) (qos.Setting, bool) {
	switch k {
	case qos.Video:
		if p.Video != nil {
			return qos.VideoSetting(*p.Video), true
		}
	case qos.Audio:
		if p.Audio != nil {
			return qos.AudioSetting(*p.Audio), true
		}
	case qos.Image, qos.Graphic:
		if p.Image != nil {
			return qos.ImageSetting(*p.Image), true
		}
	case qos.Text:
		if p.Text != nil {
			return qos.TextSetting(*p.Text), true
		}
	}
	return qos.Setting{}, false
}

// Validate checks every populated section.
func (p MMProfile) Validate() error {
	if p.Video != nil {
		if err := p.Video.Validate(); err != nil {
			return err
		}
	}
	if p.Audio != nil {
		if err := p.Audio.Validate(); err != nil {
			return err
		}
	}
	if p.Image != nil {
		if err := p.Image.Validate(); err != nil {
			return err
		}
	}
	if p.Text != nil {
		if err := p.Text.Validate(); err != nil {
			return err
		}
	}
	if err := p.Cost.Validate(); err != nil {
		return err
	}
	return p.Time.Validate()
}

// UserProfile is Section 3's user profile: the desired MM profile, the worst
// acceptable MM profile, and the importance profile. Name identifies the
// profile in the profile manager's profile list (Figure 3).
type UserProfile struct {
	Name       string     `json:"name"`
	Desired    MMProfile  `json:"desired"`
	Worst      MMProfile  `json:"worst"`
	Importance Importance `json:"importance"`
}

// Validate checks both MM profiles and their mutual consistency: the worst
// acceptable values may not exceed the desired values, and a medium with a
// desired requirement needs a worst-acceptable bound (the GUI pre-fills it
// with the desired value).
func (u UserProfile) Validate() error {
	if u.Name == "" {
		return fmt.Errorf("user profile: empty name")
	}
	if err := u.Desired.Validate(); err != nil {
		return fmt.Errorf("user profile %s: desired: %w", u.Name, err)
	}
	if err := u.Worst.Validate(); err != nil {
		return fmt.Errorf("user profile %s: worst acceptable: %w", u.Name, err)
	}
	for _, k := range []qos.MediaKind{qos.Video, qos.Audio, qos.Image, qos.Text} {
		des, dok := u.Desired.Setting(k)
		wor, wok := u.Worst.Setting(k)
		if dok != wok {
			return fmt.Errorf("user profile %s: %s present in only one MM profile", u.Name, k)
		}
		if dok && !des.Satisfies(wor) {
			return fmt.Errorf("user profile %s: desired %s QoS %s below worst acceptable %s", u.Name, k, des, wor)
		}
	}
	if u.Worst.Cost.MaxCost < u.Desired.Cost.MaxCost {
		return fmt.Errorf("user profile %s: worst-acceptable budget %v below desired budget %v",
			u.Name, u.Worst.Cost.MaxCost, u.Desired.Cost.MaxCost)
	}
	return nil
}

// MaxCost returns the binding budget: the worst-acceptable cost bound.
func (u UserProfile) MaxCost() cost.Money { return u.Worst.Cost.MaxCost }

// Clone returns a deep copy of the profile, so the GUI can edit a scratch
// copy without touching the stored one.
func (u UserProfile) Clone() UserProfile {
	c := u
	c.Desired = u.Desired.clone()
	c.Worst = u.Worst.clone()
	c.Importance = u.Importance.clone()
	return c
}

func (p MMProfile) clone() MMProfile {
	c := p
	if p.Video != nil {
		v := *p.Video
		c.Video = &v
	}
	if p.Audio != nil {
		a := *p.Audio
		c.Audio = &a
	}
	if p.Image != nil {
		i := *p.Image
		c.Image = &i
	}
	if p.Text != nil {
		t := *p.Text
		c.Text = &t
	}
	return c
}
