package profile

import (
	"testing"
)

// FuzzCurveEval checks that piecewise-linear evaluation never escapes the
// anchor envelope and never panics, for arbitrary anchors and query points.
func FuzzCurveEval(f *testing.F) {
	f.Add(1, int64(10), 25, int64(90), 60, int64(100), 30)
	f.Add(0, int64(0), 0, int64(0), 0, int64(0), 0)
	f.Add(-10, int64(-5), 10, int64(50), 20, int64(5), 15)
	f.Fuzz(func(t *testing.T, x1 int, y1 int64, x2 int, y2 int64, x3 int, y3 int64, q int) {
		c := NewCurve(
			Point{X: x1, Y: float64(y1) / 10},
			Point{X: x2, Y: float64(y2) / 10},
			Point{X: x3, Y: float64(y3) / 10},
		)
		got := c.Eval(q)
		lo, hi := c.Points[0].Y, c.Points[0].Y
		for _, p := range c.Points {
			if p.Y < lo {
				lo = p.Y
			}
			if p.Y > hi {
				hi = p.Y
			}
		}
		if got < lo-1e-9 || got > hi+1e-9 {
			t.Fatalf("Eval(%d) = %g outside [%g, %g] for %+v", q, got, lo, hi, c.Points)
		}
	})
}
