package profile

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"qosneg/internal/cost"
	"qosneg/internal/fsutil"
	"qosneg/internal/qos"
)

// ErrNotFound is returned when a named profile does not exist in the store.
var ErrNotFound = errors.New("profile not found")

// Store holds the user profiles managed by the profile manager: the main
// window of the QoS GUI (Figure 3) lets the user "select, edit or delete a
// user profile, or set a default user profile"; Store is the backing state
// for those operations. It is safe for concurrent use.
type Store struct {
	mu          sync.RWMutex
	profiles    map[string]UserProfile
	defaultName string
}

// NewStore returns an empty profile store.
func NewStore() *Store {
	return &Store{profiles: make(map[string]UserProfile)}
}

// Save stores the profile under its name, replacing any previous profile
// with that name (the GUI's Save / Save as buttons). The profile is
// validated first.
func (s *Store) Save(p UserProfile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if err := p.Importance.Validate(); err != nil {
		return fmt.Errorf("user profile %s: %w", p.Name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.profiles[p.Name] = p.Clone()
	if s.defaultName == "" {
		s.defaultName = p.Name
	}
	return nil
}

// Get returns a copy of the named profile.
func (s *Store) Get(name string) (UserProfile, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.profiles[name]
	if !ok {
		return UserProfile{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return p.Clone(), nil
}

// Delete removes the named profile. Deleting the default profile clears the
// default.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.profiles[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(s.profiles, name)
	if s.defaultName == name {
		s.defaultName = ""
	}
	return nil
}

// List returns the profile names in sorted order (the profile list of the
// main window).
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.profiles))
	for n := range s.profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetDefault marks the named profile as the default profile.
func (s *Store) SetDefault(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.profiles[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	s.defaultName = name
	return nil
}

// Default returns the default profile, or ErrNotFound when none is set.
func (s *Store) Default() (UserProfile, error) {
	s.mu.RLock()
	name := s.defaultName
	s.mu.RUnlock()
	if name == "" {
		return UserProfile{}, fmt.Errorf("%w: no default profile", ErrNotFound)
	}
	return s.Get(name)
}

// storeFile is the JSON persistence format.
type storeFile struct {
	Default  string        `json:"default,omitempty"`
	Profiles []UserProfile `json:"profiles"`
}

// SaveFile writes every profile to path as JSON.
func (s *Store) SaveFile(path string) error {
	s.mu.RLock()
	f := storeFile{Default: s.defaultName}
	for _, n := range s.listLocked() {
		f.Profiles = append(f.Profiles, s.profiles[n])
	}
	s.mu.RUnlock()
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return fsutil.WriteFileAtomic(path, data, 0o644)
}

func (s *Store) listLocked() []string {
	names := make([]string, 0, len(s.profiles))
	for n := range s.profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LoadFile reads profiles from a JSON file written by SaveFile, replacing
// the store's contents.
func (s *Store) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f storeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("profile store %s: %w", path, err)
	}
	profiles := make(map[string]UserProfile, len(f.Profiles))
	for _, p := range f.Profiles {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("profile store %s: %w", path, err)
		}
		profiles[p.Name] = p
	}
	if f.Default != "" {
		if _, ok := profiles[f.Default]; !ok {
			return fmt.Errorf("profile store %s: default profile %q missing", path, f.Default)
		}
	}
	s.mu.Lock()
	s.profiles = profiles
	s.defaultName = f.Default
	s.mu.Unlock()
	return nil
}

// DefaultProfiles returns the factory profiles the prototype ships with:
// the "TV quality" profile used by the paper's examples, a premium profile
// and an economy profile. Each comes with the default importance values.
func DefaultProfiles() []UserProfile {
	tv := UserProfile{
		Name: "tv-quality",
		Desired: MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: qos.TVRate, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  CostProfile{MaxCost: cost.Dollars(6)},
			Time:  TimeProfile{MaxStartDelay: 10 * time.Second, ChoicePeriod: 30 * time.Second},
		},
		Worst: MMProfile{
			Video: &qos.VideoQoS{Color: qos.Grey, FrameRate: 15, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  CostProfile{MaxCost: cost.Dollars(6)},
			Time:  TimeProfile{MaxStartDelay: 10 * time.Second, ChoicePeriod: 30 * time.Second},
		},
		Importance: DefaultImportance(),
	}
	premium := UserProfile{
		Name: "premium",
		Desired: MMProfile{
			Video: &qos.VideoQoS{Color: qos.SuperColor, FrameRate: 30, Resolution: 720},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Image: &qos.ImageQoS{Color: qos.Color, Resolution: qos.TVResolution},
			Cost:  CostProfile{MaxCost: cost.Dollars(20), Guarantee: cost.Guaranteed},
			Time:  TimeProfile{MaxStartDelay: 5 * time.Second, ChoicePeriod: time.Minute},
		},
		Worst: MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: qos.TVRate, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Image: &qos.ImageQoS{Color: qos.Grey, Resolution: qos.TVResolution},
			Cost:  CostProfile{MaxCost: cost.Dollars(20), Guarantee: cost.Guaranteed},
			Time:  TimeProfile{MaxStartDelay: 5 * time.Second, ChoicePeriod: time.Minute},
		},
		Importance: DefaultImportance(),
	}
	premium.Importance.CostPerDollar = 0.2 // QoS matters more than cost

	economy := UserProfile{
		Name: "economy",
		Desired: MMProfile{
			Video: &qos.VideoQoS{Color: qos.Grey, FrameRate: 15, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  CostProfile{MaxCost: cost.Dollars(2)},
			Time:  TimeProfile{MaxStartDelay: time.Minute, ChoicePeriod: 30 * time.Second},
		},
		Worst: MMProfile{
			Video: &qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 5, Resolution: qos.MinResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  CostProfile{MaxCost: cost.Dollars(2)},
			Time:  TimeProfile{MaxStartDelay: time.Minute, ChoicePeriod: 30 * time.Second},
		},
		Importance: DefaultImportance(),
	}
	economy.Importance.CostPerDollar = 4 // cost is the main constraint

	return []UserProfile{tv, premium, economy}
}
