// Package qos defines the quality-of-service vocabulary shared by every
// component of the news-on-demand reproduction: the user-perceptible
// parameter scales (color quality, frame rate, resolution, audio quality,
// language), per-media QoS settings, satisfaction ordering between settings,
// and the mapping from user-level parameters to system-level network
// parameters (maxBitRate, avgBitRate, jitter, loss rate) described in
// Section 6 of the paper.
//
// All quantities are exact integers where the paper treats them as such:
// frame rates in frames per second, resolutions in pixels per line, sample
// rates in samples per second and bit rates in bits per second. Jitter and
// delay use time.Duration; loss rates are dimensionless fractions.
package qos

import "fmt"

// BitRate is a network throughput in bits per second.
type BitRate int64

// Common bit-rate units.
const (
	BitPerSecond  BitRate = 1
	KBitPerSecond         = 1000 * BitPerSecond
	MBitPerSecond         = 1000 * KBitPerSecond
	GBitPerSecond         = 1000 * MBitPerSecond
)

// String renders the bit rate with a human-friendly unit, e.g. "1.5 Mbit/s".
func (r BitRate) String() string {
	switch {
	case r >= GBitPerSecond:
		return fmt.Sprintf("%.3g Gbit/s", float64(r)/float64(GBitPerSecond))
	case r >= MBitPerSecond:
		return fmt.Sprintf("%.3g Mbit/s", float64(r)/float64(MBitPerSecond))
	case r >= KBitPerSecond:
		return fmt.Sprintf("%.3g kbit/s", float64(r)/float64(KBitPerSecond))
	default:
		return fmt.Sprintf("%d bit/s", int64(r))
	}
}

// MediaKind identifies the medium of a monomedia object (Section 2: "a text,
// a still image, an audio sequence, a graphic or a video sequence").
type MediaKind int

// The media kinds of the document model.
const (
	Video MediaKind = iota
	Audio
	Text
	Image
	Graphic
)

var mediaKindNames = [...]string{"video", "audio", "text", "image", "graphic"}

// String returns the lower-case name of the media kind.
func (k MediaKind) String() string {
	if k < 0 || int(k) >= len(mediaKindNames) {
		return fmt.Sprintf("MediaKind(%d)", int(k))
	}
	return mediaKindNames[k]
}

// Valid reports whether k is one of the defined media kinds.
func (k MediaKind) Valid() bool { return k >= Video && k <= Graphic }

// Continuous reports whether the medium is a continuous (time-dependent)
// medium that requires streaming resources. Only continuous media consume
// server and network throughput in the prototype's cost and reservation
// model; discrete media (text, image, graphic) are delivered ahead of the
// presentation.
func (k MediaKind) Continuous() bool { return k == Video || k == Audio }

// MediaKinds lists every defined media kind in declaration order.
func MediaKinds() []MediaKind { return []MediaKind{Video, Audio, Text, Image, Graphic} }
