package qos

import (
	"testing"
	"testing/quick"
)

func TestColorQualityOrdering(t *testing.T) {
	scale := ColorQualities()
	if len(scale) != 4 {
		t.Fatalf("want 4 color qualities, got %d", len(scale))
	}
	for i := 1; i < len(scale); i++ {
		if scale[i] <= scale[i-1] {
			t.Errorf("scale not strictly increasing at %d: %v <= %v", i, scale[i], scale[i-1])
		}
		if !scale[i].AtLeast(scale[i-1]) {
			t.Errorf("%v should be at least %v", scale[i], scale[i-1])
		}
		if scale[i-1].AtLeast(scale[i]) {
			t.Errorf("%v should not be at least %v", scale[i-1], scale[i])
		}
	}
}

func TestColorQualityNames(t *testing.T) {
	cases := map[ColorQuality]string{
		BlackWhite: "black&white",
		Grey:       "grey",
		Color:      "color",
		SuperColor: "super-color",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
		if !c.Valid() {
			t.Errorf("%v should be valid", c)
		}
	}
	if ColorQuality(0).Valid() || ColorQuality(5).Valid() {
		t.Error("out-of-range color qualities must be invalid")
	}
	if got := ColorQuality(42).String(); got != "ColorQuality(42)" {
		t.Errorf("unknown color String() = %q", got)
	}
}

func TestAudioGrades(t *testing.T) {
	if !CDQuality.AtLeast(TelephoneQuality) {
		t.Error("CD must satisfy telephone")
	}
	if TelephoneQuality.AtLeast(CDQuality) {
		t.Error("telephone must not satisfy CD")
	}
	if got := CDQuality.String(); got != "CD" {
		t.Errorf("CDQuality.String() = %q", got)
	}
	if got := TelephoneQuality.String(); got != "telephone" {
		t.Errorf("TelephoneQuality.String() = %q", got)
	}
	if AudioGrade(0).Valid() || AudioGrade(3).Valid() {
		t.Error("out-of-range audio grades must be invalid")
	}
	if CDQuality.SampleRate() != 44100 || TelephoneQuality.SampleRate() != 8000 {
		t.Errorf("sample rates: CD=%d tel=%d", CDQuality.SampleRate(), TelephoneQuality.SampleRate())
	}
}

func TestFigure2Ranges(t *testing.T) {
	// "any integer values between HDTV rate (60 frames/s) and frozen rate
	// (1 frame/s)" and "between HDTV resolution (1920 pixels/line) and
	// minimal resolution (10 pixels/line)".
	if HDTVRate != 60 || FrozenRate != 1 {
		t.Fatalf("frame-rate anchors: HDTV=%d frozen=%d", HDTVRate, FrozenRate)
	}
	if HDTVResolution != 1920 || MinResolution != 10 {
		t.Fatalf("resolution anchors: HDTV=%d min=%d", HDTVResolution, MinResolution)
	}
	for _, r := range []int{1, 25, 60} {
		if !ValidFrameRate(r) {
			t.Errorf("frame rate %d should be valid", r)
		}
	}
	for _, r := range []int{0, -3, 61, 1000} {
		if ValidFrameRate(r) {
			t.Errorf("frame rate %d should be invalid", r)
		}
	}
	for _, r := range []int{10, 480, 1920} {
		if !ValidResolution(r) {
			t.Errorf("resolution %d should be valid", r)
		}
	}
	for _, r := range []int{9, 0, 1921} {
		if ValidResolution(r) {
			t.Errorf("resolution %d should be invalid", r)
		}
	}
}

func TestMediaKind(t *testing.T) {
	names := map[MediaKind]string{Video: "video", Audio: "audio", Text: "text", Image: "image", Graphic: "graphic"}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
		if !k.Valid() {
			t.Errorf("%v should be valid", k)
		}
	}
	if MediaKind(-1).Valid() || MediaKind(5).Valid() {
		t.Error("out-of-range media kinds must be invalid")
	}
	if !Video.Continuous() || !Audio.Continuous() {
		t.Error("video and audio are continuous media")
	}
	if Text.Continuous() || Image.Continuous() || Graphic.Continuous() {
		t.Error("text, image, graphic are discrete media")
	}
	if got := len(MediaKinds()); got != 5 {
		t.Errorf("MediaKinds() returned %d kinds", got)
	}
}

func TestBitRateString(t *testing.T) {
	cases := map[BitRate]string{
		500 * BitPerSecond:     "500 bit/s",
		64 * KBitPerSecond:     "64 kbit/s",
		1500 * KBitPerSecond:   "1.5 Mbit/s",
		2400 * MBitPerSecond:   "2.4 Gbit/s",
		1 * MBitPerSecond:      "1 Mbit/s",
		128_000 * BitPerSecond: "128 kbit/s",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(r), got, want)
		}
	}
}

// Property: AtLeast is a total order consistent with integer comparison on
// the color scale.
func TestColorAtLeastProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		x := ColorQuality(a%4) + 1
		y := ColorQuality(b%4) + 1
		return x.AtLeast(y) == (x >= y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
