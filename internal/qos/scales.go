package qos

import "fmt"

// ColorQuality is the ordered color scale of Figure 2: black&white < grey <
// color < super-color. A larger value is a strictly better quality.
type ColorQuality int

// The color qualities a user may request for video and still images.
const (
	BlackWhite ColorQuality = iota + 1
	Grey
	Color
	SuperColor
)

var colorNames = map[ColorQuality]string{
	BlackWhite: "black&white",
	Grey:       "grey",
	Color:      "color",
	SuperColor: "super-color",
}

// String returns the paper's name for the color quality.
func (c ColorQuality) String() string {
	if s, ok := colorNames[c]; ok {
		return s
	}
	return fmt.Sprintf("ColorQuality(%d)", int(c))
}

// Valid reports whether c is one of the defined color qualities.
func (c ColorQuality) Valid() bool { return c >= BlackWhite && c <= SuperColor }

// AtLeast reports whether c is the same or a better color quality than min.
func (c ColorQuality) AtLeast(min ColorQuality) bool { return c >= min }

// ColorQualities lists the color scale from worst to best.
func ColorQualities() []ColorQuality {
	return []ColorQuality{BlackWhite, Grey, Color, SuperColor}
}

// AudioGrade is the ordered audio-quality scale of Figure 2: telephone < CD.
// A larger value is a strictly better quality.
type AudioGrade int

// The audio grades a user may request.
const (
	TelephoneQuality AudioGrade = iota + 1
	CDQuality
)

var audioGradeNames = map[AudioGrade]string{
	TelephoneQuality: "telephone",
	CDQuality:        "CD",
}

// String returns the paper's name for the audio grade.
func (g AudioGrade) String() string {
	if s, ok := audioGradeNames[g]; ok {
		return s
	}
	return fmt.Sprintf("AudioGrade(%d)", int(g))
}

// Valid reports whether g is one of the defined audio grades.
func (g AudioGrade) Valid() bool { return g == TelephoneQuality || g == CDQuality }

// AtLeast reports whether g is the same or a better grade than min.
func (g AudioGrade) AtLeast(min AudioGrade) bool { return g >= min }

// AudioGrades lists the audio scale from worst to best.
func AudioGrades() []AudioGrade { return []AudioGrade{TelephoneQuality, CDQuality} }

// SampleRate returns the conventional sample rate, in samples per second,
// used by the prototype for the grade (8 kHz telephone, 44.1 kHz CD).
func (g AudioGrade) SampleRate() int {
	if g == CDQuality {
		return 44100
	}
	return 8000
}

// Language identifies the language of a text or audio monomedia. The paper's
// importance example (4) ranks French above English; the scale is unordered,
// preference between languages is expressed through importance factors only.
type Language string

// Languages appearing in the news-on-demand prototype.
const (
	English Language = "english"
	French  Language = "french"
)

// Frame-rate anchor points of Figure 2, in frames per second. The user may
// request "any integer values between HDTV rate (60 frames/s) and frozen
// rate (1 frame/s)".
const (
	FrozenRate = 1  // "frozen rate": one frame per second
	TVRate     = 25 // the TV rate used throughout the paper's examples
	HDTVRate   = 60 // "HDTV rate"
)

// Resolution anchor points of Figure 2, in pixels per line. The user may
// request "any integer values between HDTV resolution (1920 pixels/line) and
// minimal resolution (10 pixels/line)".
const (
	MinResolution  = 10
	TVResolution   = 480
	HDTVResolution = 1920
)

// ValidFrameRate reports whether r lies in the user-selectable frame-rate
// range of Figure 2.
func ValidFrameRate(r int) bool { return r >= FrozenRate && r <= HDTVRate }

// ValidResolution reports whether r lies in the user-selectable resolution
// range of Figure 2.
func ValidResolution(r int) bool { return r >= MinResolution && r <= HDTVResolution }
