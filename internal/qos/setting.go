package qos

import "fmt"

// VideoQoS is the user-perceptible quality of a video monomedia: the three
// parameters negotiated in every example of the paper (color quality, frame
// rate in frames/s, resolution in pixels/line).
type VideoQoS struct {
	Color      ColorQuality `json:"color"`
	FrameRate  int          `json:"frameRate"`
	Resolution int          `json:"resolution"`
}

// Satisfies reports whether v meets or exceeds min on every parameter.
func (v VideoQoS) Satisfies(min VideoQoS) bool {
	return v.Color >= min.Color && v.FrameRate >= min.FrameRate && v.Resolution >= min.Resolution
}

// Validate reports an error when a field lies outside the Figure 2 ranges.
func (v VideoQoS) Validate() error {
	if !v.Color.Valid() {
		return fmt.Errorf("video QoS: invalid color quality %d", int(v.Color))
	}
	if !ValidFrameRate(v.FrameRate) {
		return fmt.Errorf("video QoS: frame rate %d outside [%d, %d]", v.FrameRate, FrozenRate, HDTVRate)
	}
	if !ValidResolution(v.Resolution) {
		return fmt.Errorf("video QoS: resolution %d outside [%d, %d]", v.Resolution, MinResolution, HDTVResolution)
	}
	return nil
}

// String renders the triple in the order the paper uses, e.g.
// "(color, 25 frames/s, 480 pixels/line)".
func (v VideoQoS) String() string {
	return fmt.Sprintf("(%s, %d frames/s, %d pixels/line)", v.Color, v.FrameRate, v.Resolution)
}

// AudioQoS is the user-perceptible quality of an audio monomedia: the audio
// grade of Figure 2 plus the language (the paper's importance example (4)
// lets the user rank French above English).
type AudioQoS struct {
	Grade    AudioGrade `json:"grade"`
	Language Language   `json:"language,omitempty"`
}

// Satisfies reports whether a meets or exceeds min. A language constraint in
// min is satisfied only by the identical language; an empty language in min
// accepts any.
func (a AudioQoS) Satisfies(min AudioQoS) bool {
	if !a.Grade.AtLeast(min.Grade) {
		return false
	}
	return min.Language == "" || a.Language == min.Language
}

// Validate reports an error when the grade is undefined.
func (a AudioQoS) Validate() error {
	if !a.Grade.Valid() {
		return fmt.Errorf("audio QoS: invalid grade %d", int(a.Grade))
	}
	return nil
}

// String renders e.g. "(CD quality, french)".
func (a AudioQoS) String() string {
	if a.Language == "" {
		return fmt.Sprintf("(%s quality)", a.Grade)
	}
	return fmt.Sprintf("(%s quality, %s)", a.Grade, a.Language)
}

// ImageQoS is the user-perceptible quality of a still image or graphic.
type ImageQoS struct {
	Color      ColorQuality `json:"color"`
	Resolution int          `json:"resolution"`
}

// Satisfies reports whether i meets or exceeds min on both parameters.
func (i ImageQoS) Satisfies(min ImageQoS) bool {
	return i.Color >= min.Color && i.Resolution >= min.Resolution
}

// Validate reports an error when a field lies outside the Figure 2 ranges.
func (i ImageQoS) Validate() error {
	if !i.Color.Valid() {
		return fmt.Errorf("image QoS: invalid color quality %d", int(i.Color))
	}
	if !ValidResolution(i.Resolution) {
		return fmt.Errorf("image QoS: resolution %d outside [%d, %d]", i.Resolution, MinResolution, HDTVResolution)
	}
	return nil
}

// String renders e.g. "(color, 480 pixels/line)".
func (i ImageQoS) String() string {
	return fmt.Sprintf("(%s, %d pixels/line)", i.Color, i.Resolution)
}

// TextQoS is the user-perceptible quality of a text monomedia. The only
// negotiable parameter in the prototype is the language.
type TextQoS struct {
	Language Language `json:"language,omitempty"`
}

// Satisfies reports whether t matches min's language constraint (empty
// accepts any).
func (t TextQoS) Satisfies(min TextQoS) bool {
	return min.Language == "" || t.Language == min.Language
}

// Validate always succeeds: every language string is permitted.
func (t TextQoS) Validate() error { return nil }

// String renders e.g. "(french)".
func (t TextQoS) String() string {
	if t.Language == "" {
		return "(any language)"
	}
	return fmt.Sprintf("(%s)", t.Language)
}

// Setting is the QoS of a single monomedia object, tagged by media kind.
// Exactly one of the pointer fields is set; graphics share the ImageQoS
// parameters. The zero Setting has no kind and satisfies nothing.
type Setting struct {
	Video *VideoQoS `json:"video,omitempty"`
	Audio *AudioQoS `json:"audio,omitempty"`
	Image *ImageQoS `json:"image,omitempty"`
	Text  *TextQoS  `json:"text,omitempty"`
}

// VideoSetting wraps a video QoS as a Setting.
func VideoSetting(v VideoQoS) Setting { return Setting{Video: &v} }

// AudioSetting wraps an audio QoS as a Setting.
func AudioSetting(a AudioQoS) Setting { return Setting{Audio: &a} }

// ImageSetting wraps an image/graphic QoS as a Setting.
func ImageSetting(i ImageQoS) Setting { return Setting{Image: &i} }

// TextSetting wraps a text QoS as a Setting.
func TextSetting(t TextQoS) Setting { return Setting{Text: &t} }

// Kind returns the media kind the setting describes, and false for the zero
// Setting. Image settings report the Image kind; callers attach them to
// graphic monomedia as well.
func (s Setting) Kind() (MediaKind, bool) {
	switch {
	case s.Video != nil:
		return Video, true
	case s.Audio != nil:
		return Audio, true
	case s.Image != nil:
		return Image, true
	case s.Text != nil:
		return Text, true
	}
	return 0, false
}

// Validate checks that exactly one media section is present and in range.
func (s Setting) Validate() error {
	n := 0
	var err error
	if s.Video != nil {
		n, err = n+1, s.Video.Validate()
	}
	if s.Audio != nil {
		if e := s.Audio.Validate(); err == nil {
			err = e
		}
		n++
	}
	if s.Image != nil {
		if e := s.Image.Validate(); err == nil {
			err = e
		}
		n++
	}
	if s.Text != nil {
		if e := s.Text.Validate(); err == nil {
			err = e
		}
		n++
	}
	if n != 1 {
		return fmt.Errorf("setting: want exactly one media section, have %d", n)
	}
	return err
}

// Satisfies reports whether s meets or exceeds min. Settings of different
// kinds (or zero Settings) never satisfy each other.
func (s Setting) Satisfies(min Setting) bool {
	switch {
	case s.Video != nil && min.Video != nil:
		return s.Video.Satisfies(*min.Video)
	case s.Audio != nil && min.Audio != nil:
		return s.Audio.Satisfies(*min.Audio)
	case s.Image != nil && min.Image != nil:
		return s.Image.Satisfies(*min.Image)
	case s.Text != nil && min.Text != nil:
		return s.Text.Satisfies(*min.Text)
	}
	return false
}

// String renders the setting in the paper's tuple notation.
func (s Setting) String() string {
	switch {
	case s.Video != nil:
		return s.Video.String()
	case s.Audio != nil:
		return s.Audio.String()
	case s.Image != nil:
		return s.Image.String()
	case s.Text != nil:
		return s.Text.String()
	}
	return "(unset)"
}
