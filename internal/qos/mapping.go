package qos

import (
	"fmt"
	"time"
)

// NetworkQoS holds the system-level parameters the QoS manager derives from
// a user request (Section 6): the throughput pair (maxBitRate, avgBitRate)
// plus the jitter and loss-rate targets taken from the literature ([Ste 90]).
type NetworkQoS struct {
	MaxBitRate BitRate       `json:"maxBitRate"`
	AvgBitRate BitRate       `json:"avgBitRate"`
	Jitter     time.Duration `json:"jitter"`
	LossRate   float64       `json:"lossRate"`
	// Delay is the end-to-end delay target; zero means unconstrained.
	Delay time.Duration `json:"delay,omitempty"`
}

// String renders e.g. "max 2.4 Mbit/s avg 1.2 Mbit/s jitter 10ms loss 0.003".
func (n NetworkQoS) String() string {
	return fmt.Sprintf("max %s avg %s jitter %s loss %g", n.MaxBitRate, n.AvgBitRate, n.Jitter, n.LossRate)
}

// Zero reports whether the network QoS carries no throughput requirement
// (the case for discrete media, which are delivered ahead of time).
func (n NetworkQoS) Zero() bool { return n.MaxBitRate == 0 && n.AvgBitRate == 0 }

// Jitter and loss-rate targets for continuous media, per Section 6: "we use
// specific values for video and audio presented in [Ste 90] based on some
// experiments. As an example the following values are considered for the
// video: jitter = 10 ms, and loss rate 0.003." The audio values follow the
// same source's recommendation of tighter audio tolerances; see DESIGN.md.
const (
	VideoJitter   = 10 * time.Millisecond
	VideoLossRate = 0.003
	AudioJitter   = 5 * time.Millisecond
	AudioLossRate = 0.001
	// StreamDelay is the end-to-end delay target for presentational
	// (non-conversational) continuous media: generous, since playout is
	// one-way and buffered.
	StreamDelay = 500 * time.Millisecond
)

// BlockStats records the stored block-length statistics of a continuous
// monomedia: "the block length, namely the maximum and the average length,
// of a monomedia of the document, is stored in the MM database" (Section 6).
// For video a block is a frame; for audio a block is a sample group. Lengths
// are in bytes.
type BlockStats struct {
	MaxBlockBytes int64 `json:"maxBlockBytes"`
	AvgBlockBytes int64 `json:"avgBlockBytes"`
}

// Validate reports an error when the statistics are inconsistent.
func (b BlockStats) Validate() error {
	if b.MaxBlockBytes < 0 || b.AvgBlockBytes < 0 {
		return fmt.Errorf("block stats: negative length (max %d, avg %d)", b.MaxBlockBytes, b.AvgBlockBytes)
	}
	if b.AvgBlockBytes > b.MaxBlockBytes {
		return fmt.Errorf("block stats: average length %d exceeds maximum %d", b.AvgBlockBytes, b.MaxBlockBytes)
	}
	return nil
}

// MapVideo implements the video mapping of Section 6:
//
//	maxBitRate = (maximum frame length) × (frame rate)
//	avgBitRate = (average frame length) × (frame rate)
//
// with frame lengths converted from bytes to bits, and attaches the video
// jitter and loss-rate targets.
func MapVideo(blocks BlockStats, frameRate int) NetworkQoS {
	return NetworkQoS{
		MaxBitRate: BitRate(blocks.MaxBlockBytes * 8 * int64(frameRate)),
		AvgBitRate: BitRate(blocks.AvgBlockBytes * 8 * int64(frameRate)),
		Jitter:     VideoJitter,
		LossRate:   VideoLossRate,
		Delay:      StreamDelay,
	}
}

// MapAudio implements the audio mapping of Section 6. The paper's text reads
// "maxBitRate = (maximum sample rate)×(sample rate)"; by symmetry with the
// video formula this is a typo for (maximum sample length)×(sample rate),
// which is what we compute (see DESIGN.md, interpretation notes).
func MapAudio(blocks BlockStats, sampleRate int) NetworkQoS {
	return NetworkQoS{
		MaxBitRate: BitRate(blocks.MaxBlockBytes * 8 * int64(sampleRate)),
		AvgBitRate: BitRate(blocks.AvgBlockBytes * 8 * int64(sampleRate)),
		Jitter:     AudioJitter,
		LossRate:   AudioLossRate,
		Delay:      StreamDelay,
	}
}

// MapSetting derives the network QoS for a monomedia whose stored block
// statistics are blocks and whose negotiated user-level QoS is s. Discrete
// media (text, images, graphics) map to a zero throughput requirement: the
// prototype delivers them ahead of the presentation.
func MapSetting(s Setting, blocks BlockStats) NetworkQoS {
	switch {
	case s.Video != nil:
		return MapVideo(blocks, s.Video.FrameRate)
	case s.Audio != nil:
		return MapAudio(blocks, s.Audio.Grade.SampleRate())
	}
	return NetworkQoS{}
}
