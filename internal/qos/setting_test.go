package qos

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestVideoQoSSatisfies(t *testing.T) {
	want := VideoQoS{Color: Color, FrameRate: 25, Resolution: TVResolution}
	cases := []struct {
		name  string
		offer VideoQoS
		ok    bool
	}{
		{"identical", VideoQoS{Color, 25, TVResolution}, true},
		{"better color", VideoQoS{SuperColor, 25, TVResolution}, true},
		{"better rate", VideoQoS{Color, 30, TVResolution}, true},
		{"better resolution", VideoQoS{Color, 25, HDTVResolution}, true},
		{"worse color", VideoQoS{Grey, 25, TVResolution}, false},
		{"worse rate", VideoQoS{Color, 15, TVResolution}, false},
		{"worse resolution", VideoQoS{Color, 25, MinResolution}, false},
		{"all better", VideoQoS{SuperColor, 60, HDTVResolution}, true},
		{"mixed", VideoQoS{SuperColor, 15, HDTVResolution}, false},
	}
	for _, c := range cases {
		if got := c.offer.Satisfies(want); got != c.ok {
			t.Errorf("%s: Satisfies = %v, want %v", c.name, got, c.ok)
		}
	}
}

func TestVideoQoSValidate(t *testing.T) {
	good := VideoQoS{Color: Color, FrameRate: 25, Resolution: TVResolution}
	if err := good.Validate(); err != nil {
		t.Errorf("valid QoS rejected: %v", err)
	}
	bad := []VideoQoS{
		{Color: 0, FrameRate: 25, Resolution: 480},
		{Color: Color, FrameRate: 0, Resolution: 480},
		{Color: Color, FrameRate: 61, Resolution: 480},
		{Color: Color, FrameRate: 25, Resolution: 5},
		{Color: Color, FrameRate: 25, Resolution: 4000},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("bad QoS %d accepted: %+v", i, v)
		}
	}
}

func TestAudioQoSSatisfies(t *testing.T) {
	min := AudioQoS{Grade: TelephoneQuality, Language: French}
	if !(AudioQoS{Grade: CDQuality, Language: French}).Satisfies(min) {
		t.Error("CD french should satisfy telephone french")
	}
	if (AudioQoS{Grade: CDQuality, Language: English}).Satisfies(min) {
		t.Error("english must not satisfy a french constraint")
	}
	anyLang := AudioQoS{Grade: CDQuality}
	if !(AudioQoS{Grade: CDQuality, Language: English}).Satisfies(anyLang) {
		t.Error("empty language constraint accepts any language")
	}
	if (AudioQoS{Grade: TelephoneQuality}).Satisfies(anyLang) {
		t.Error("telephone must not satisfy CD")
	}
}

func TestTextAndImageQoS(t *testing.T) {
	if !(TextQoS{Language: French}).Satisfies(TextQoS{}) {
		t.Error("empty text constraint accepts any")
	}
	if (TextQoS{Language: English}).Satisfies(TextQoS{Language: French}) {
		t.Error("language mismatch must fail")
	}
	if err := (TextQoS{}).Validate(); err != nil {
		t.Errorf("text validate: %v", err)
	}
	img := ImageQoS{Color: Grey, Resolution: 480}
	if !img.Satisfies(ImageQoS{Color: BlackWhite, Resolution: 100}) {
		t.Error("better image should satisfy")
	}
	if img.Satisfies(ImageQoS{Color: Color, Resolution: 100}) {
		t.Error("worse color must fail")
	}
	if err := (ImageQoS{Color: Grey, Resolution: 480}).Validate(); err != nil {
		t.Errorf("image validate: %v", err)
	}
	if err := (ImageQoS{Color: Grey, Resolution: 1}).Validate(); err == nil {
		t.Error("image resolution 1 must be invalid")
	}
}

func TestSettingKindAndValidate(t *testing.T) {
	cases := []struct {
		s    Setting
		kind MediaKind
	}{
		{VideoSetting(VideoQoS{Color, 25, 480}), Video},
		{AudioSetting(AudioQoS{Grade: CDQuality}), Audio},
		{ImageSetting(ImageQoS{Color: Grey, Resolution: 480}), Image},
		{TextSetting(TextQoS{Language: French}), Text},
	}
	for _, c := range cases {
		k, ok := c.s.Kind()
		if !ok || k != c.kind {
			t.Errorf("Kind() = %v,%v want %v", k, ok, c.kind)
		}
		if err := c.s.Validate(); err != nil {
			t.Errorf("Validate(%v): %v", c.kind, err)
		}
	}
	if _, ok := (Setting{}).Kind(); ok {
		t.Error("zero setting has no kind")
	}
	if err := (Setting{}).Validate(); err == nil {
		t.Error("zero setting must not validate")
	}
	two := Setting{Video: &VideoQoS{Color, 25, 480}, Text: &TextQoS{}}
	if err := two.Validate(); err == nil {
		t.Error("setting with two sections must not validate")
	}
}

func TestSettingSatisfiesCrossKind(t *testing.T) {
	v := VideoSetting(VideoQoS{SuperColor, 60, 1920})
	a := AudioSetting(AudioQoS{Grade: CDQuality})
	if v.Satisfies(a) || a.Satisfies(v) {
		t.Error("settings of different kinds never satisfy each other")
	}
	if v.Satisfies(Setting{}) || (Setting{}).Satisfies(v) {
		t.Error("zero settings never participate in satisfaction")
	}
	if !v.Satisfies(VideoSetting(VideoQoS{Color, 25, 480})) {
		t.Error("better video must satisfy worse")
	}
}

func TestSettingStrings(t *testing.T) {
	s := VideoSetting(VideoQoS{Color, 25, 480}).String()
	if !strings.Contains(s, "color") || !strings.Contains(s, "25 frames/s") {
		t.Errorf("video setting string %q", s)
	}
	if got := (Setting{}).String(); got != "(unset)" {
		t.Errorf("zero setting string %q", got)
	}
	if got := TextSetting(TextQoS{}).String(); got != "(any language)" {
		t.Errorf("empty text string %q", got)
	}
}

func TestSettingJSONRoundTrip(t *testing.T) {
	in := VideoSetting(VideoQoS{Color: SuperColor, FrameRate: 30, Resolution: 720})
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Setting
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Video == nil || *out.Video != *in.Video {
		t.Errorf("round trip: got %+v want %+v", out, in)
	}
	if out.Audio != nil || out.Image != nil || out.Text != nil {
		t.Error("round trip populated extra sections")
	}
}

// Property: Satisfies is reflexive and antisymmetric-compatible on valid
// video QoS values.
func TestVideoSatisfiesProperties(t *testing.T) {
	gen := func(c, r, p uint16) VideoQoS {
		return VideoQoS{
			Color:      ColorQuality(c%4) + 1,
			FrameRate:  int(r%60) + 1,
			Resolution: int(p%1911) + 10,
		}
	}
	reflexive := func(c, r, p uint16) bool {
		v := gen(c, r, p)
		return v.Satisfies(v)
	}
	if err := quick.Check(reflexive, nil); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
	transitive := func(a1, a2, a3, b1, b2, b3, c1, c2, c3 uint16) bool {
		a, b, c := gen(a1, a2, a3), gen(b1, b2, b3), gen(c1, c2, c3)
		if a.Satisfies(b) && b.Satisfies(c) {
			return a.Satisfies(c)
		}
		return true
	}
	if err := quick.Check(transitive, nil); err != nil {
		t.Errorf("transitivity: %v", err)
	}
}
