package qos

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMapVideoFormulas(t *testing.T) {
	// Section 6: maxBitRate = (maximum frame length)×(frame rate),
	// avgBitRate = (average frame length)×(frame rate). A 12 kB max /
	// 6 kB avg frame at 25 frames/s gives 2.4 / 1.2 Mbit/s.
	b := BlockStats{MaxBlockBytes: 12000, AvgBlockBytes: 6000}
	n := MapVideo(b, 25)
	if n.MaxBitRate != 2_400_000 {
		t.Errorf("maxBitRate = %d, want 2400000", n.MaxBitRate)
	}
	if n.AvgBitRate != 1_200_000 {
		t.Errorf("avgBitRate = %d, want 1200000", n.AvgBitRate)
	}
	if n.Jitter != 10*time.Millisecond {
		t.Errorf("video jitter = %v, want 10ms (Section 6)", n.Jitter)
	}
	if n.LossRate != 0.003 {
		t.Errorf("video loss rate = %g, want 0.003 (Section 6)", n.LossRate)
	}
}

func TestMapAudioFormulas(t *testing.T) {
	// 2 bytes/sample at CD rate 44100 Hz: 705.6 kbit/s.
	b := BlockStats{MaxBlockBytes: 2, AvgBlockBytes: 2}
	n := MapAudio(b, 44100)
	if n.MaxBitRate != 705_600 || n.AvgBitRate != 705_600 {
		t.Errorf("CD audio bit rates = %d/%d, want 705600", n.MaxBitRate, n.AvgBitRate)
	}
	if n.Jitter != AudioJitter || n.LossRate != AudioLossRate {
		t.Errorf("audio targets = %v/%g", n.Jitter, n.LossRate)
	}
}

func TestMapSettingDispatch(t *testing.T) {
	b := BlockStats{MaxBlockBytes: 1000, AvgBlockBytes: 500}
	v := MapSetting(VideoSetting(VideoQoS{Color, 10, 480}), b)
	if v.MaxBitRate != BitRate(1000*8*10) {
		t.Errorf("video dispatch: %d", v.MaxBitRate)
	}
	a := MapSetting(AudioSetting(AudioQoS{Grade: TelephoneQuality}), b)
	if a.MaxBitRate != BitRate(1000*8*8000) {
		t.Errorf("audio dispatch: %d", a.MaxBitRate)
	}
	for _, s := range []Setting{
		TextSetting(TextQoS{Language: English}),
		ImageSetting(ImageQoS{Color: Color, Resolution: 480}),
		{},
	} {
		if n := MapSetting(s, b); !n.Zero() {
			t.Errorf("discrete media must map to zero throughput, got %v", n)
		}
	}
}

func TestBlockStatsValidate(t *testing.T) {
	if err := (BlockStats{MaxBlockBytes: 10, AvgBlockBytes: 5}).Validate(); err != nil {
		t.Errorf("valid stats rejected: %v", err)
	}
	if err := (BlockStats{MaxBlockBytes: 5, AvgBlockBytes: 10}).Validate(); err == nil {
		t.Error("avg > max must be invalid")
	}
	if err := (BlockStats{MaxBlockBytes: -1, AvgBlockBytes: -2}).Validate(); err == nil {
		t.Error("negative lengths must be invalid")
	}
}

func TestNetworkQoSString(t *testing.T) {
	n := NetworkQoS{MaxBitRate: 2_400_000, AvgBitRate: 1_200_000, Jitter: 10 * time.Millisecond, LossRate: 0.003}
	got := n.String()
	want := "max 2.4 Mbit/s avg 1.2 Mbit/s jitter 10ms loss 0.003"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Properties: mapping is linear in the frame rate and monotone in block
// size; avg never exceeds max for valid block stats.
func TestMappingProperties(t *testing.T) {
	linear := func(maxB, avgB uint16, rate uint8) bool {
		r := int(rate%60) + 1
		b := BlockStats{MaxBlockBytes: int64(maxB), AvgBlockBytes: int64(avgB)}
		n1 := MapVideo(b, r)
		n2 := MapVideo(b, 2*r)
		return n2.MaxBitRate == 2*n1.MaxBitRate && n2.AvgBitRate == 2*n1.AvgBitRate
	}
	if err := quick.Check(linear, nil); err != nil {
		t.Errorf("linearity: %v", err)
	}
	ordered := func(maxB, avgB uint16, rate uint8) bool {
		if avgB > maxB {
			avgB, maxB = maxB, avgB
		}
		r := int(rate%60) + 1
		n := MapVideo(BlockStats{MaxBlockBytes: int64(maxB), AvgBlockBytes: int64(avgB)}, r)
		return n.AvgBitRate <= n.MaxBitRate
	}
	if err := quick.Check(ordered, nil); err != nil {
		t.Errorf("avg<=max: %v", err)
	}
}

func TestMappingSetsDelayTarget(t *testing.T) {
	b := BlockStats{MaxBlockBytes: 1000, AvgBlockBytes: 500}
	if got := MapVideo(b, 25).Delay; got != StreamDelay {
		t.Errorf("video delay target = %v", got)
	}
	if got := MapAudio(b, 8000).Delay; got != StreamDelay {
		t.Errorf("audio delay target = %v", got)
	}
	if got := MapSetting(TextSetting(TextQoS{}), b).Delay; got != 0 {
		t.Errorf("discrete delay target = %v", got)
	}
}
