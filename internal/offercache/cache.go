// Package offercache memoizes the static half of the negotiation procedure.
//
// Steps 1–3 of the Section 4 procedure recompute, per request, work that
// depends only on (document, client machine class, pricing, quarantine set):
// the decodable-variant filter of step 2, the Section 6 user→network QoS
// mapping and the Section 7 per-variant stream price. A presentational
// news-on-demand service plays the *same* hot documents to many users on a
// handful of machine classes, so nearly all of that work is identical across
// negotiations. This package caches its result — the per-monomedia
// offer.Candidates set, plus (for products up to MaterializeLimit) the built
// offer list derived from it — behind a key that names every input the
// computation reads, plus generation stamps for the two inputs that mutate
// in place.
//
// # Coherence argument
//
// A cached candidate set is a pure function of
//
//	(document bytes, machine capabilities, pricing tables,
//	 service guarantee, excluded-server set)
//
// Each of those is pinned by the key or by an entry stamp:
//
//   - document bytes   → Key.Doc + the entry's document generation, which the
//     registry bumps on every Add/Remove/LoadFile touching the document;
//   - machine          → Key.Machine, the capability fingerprint
//     (client.Machine.Fingerprint — capabilities only, not identity);
//   - pricing          → the entry's pricing generation, bumped by the
//     manager whenever the pricing tables are swapped;
//   - guarantee        → Key.Guarantee;
//   - excluded servers → Key.Exclusion, an order-independent hash of the
//     quarantined server ids (ExclusionHash).
//
// Lookup returns a hit only when the caller's current generations equal the
// entry's stamps, so a hit is *provably* the same value a fresh computation
// would produce: every input either hashes into the key or is
// generation-checked. A stale entry (generation mismatch) is dropped on
// sight and reported as an invalidation, never served. Time-based quarantine
// expiry needs no epoch plumbing at all: when a server leaves the excluded
// set the caller simply computes a different ExclusionHash and misses into a
// fresh entry, while the old world's entries age out of the LRU (or are
// dropped promptly by PurgeExclusions on breaker transitions).
//
// The cache is sharded; each shard holds an LRU list under its own mutex, so
// concurrent negotiations on different documents rarely contend.
package offercache

import (
	"sort"
	"sync"
	"sync/atomic"

	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/offer"
)

// DefaultSize is the entry capacity used when the configured size is 0.
const DefaultSize = 1024

// MaterializeLimit bounds the cartesian-product size up to which callers
// memoize the built offer list alongside the candidate set. Offers are a
// pure function of (document, candidates) — exactly the cached inputs — so
// sharing them is as coherent as sharing the candidates; the limit only
// bounds per-entry memory, keeping huge products streaming-only.
const MaterializeLimit = 4096

const numShards = 16

// Key names every hashed input of a memoized candidate set. Two requests
// with equal keys and matching generation stamps are guaranteed to filter,
// map and price to identical candidates.
type Key struct {
	// Doc is the document id.
	Doc media.DocumentID
	// Machine is the client machine's capability fingerprint
	// (client.Machine.Fingerprint): users on the same machine class share
	// entries.
	Machine uint64
	// Guarantee is the priced service guarantee; it selects tariff tables,
	// so it is part of the key.
	Guarantee cost.Guarantee
	// Exclusion is ExclusionHash over the quarantined-server set the
	// candidates were filtered under.
	Exclusion uint64
}

// Outcome classifies a Lookup.
type Outcome int

const (
	// Miss: no entry under the key.
	Miss Outcome = iota
	// Hit: entry present with matching generation stamps; the returned
	// candidates are coherent.
	Hit
	// Stale: entry present but its document or pricing generation no longer
	// matches; the entry was dropped and must be recomputed.
	Stale
)

type entry struct {
	key        Key
	docGen     uint64
	pricingGen uint64
	cands      offer.Candidates
	// offers is the materialized cartesian product in lexicographic (Walk)
	// order, memoized when the product is at most MaterializeLimit; nil
	// otherwise. Derived purely from the document and cands, so the same
	// stamps that keep cands coherent keep offers coherent.
	offers     []offer.SystemOffer
	prev, next *entry
}

// shard is one LRU segment: map for lookup, doubly-linked list for
// recency order (head = most recent, tail = eviction victim).
type shard struct {
	mu         sync.Mutex
	entries    map[Key]*entry
	head, tail *entry
	cap        int
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Entries       uint64 `json:"entries"`
}

// Cache is a sharded, concurrency-safe candidate-set cache. The zero value
// is not usable; construct with New. Stored candidate sets are shared by
// reference across negotiations and MUST be treated as immutable — the
// enumeration pipeline only reads them, and Filter always builds fresh
// slices, so this holds by construction.
type Cache struct {
	shards [numShards]shard

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	entries       atomic.Int64
}

// New builds a cache holding up to size entries across all shards; size 0
// selects DefaultSize, negative sizes are clamped to one entry per shard.
func New(size int) *Cache {
	if size == 0 {
		size = DefaultSize
	}
	per := (size + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i] = shard{entries: make(map[Key]*entry), cap: per}
	}
	return c
}

// fnv-1a constants, inlined to keep the package dependency-free.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func hashUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

func (k Key) hash() uint64 {
	h := hashString(uint64(fnvOffset), string(k.Doc))
	h = hashUint64(h, k.Machine)
	h = hashUint64(h, uint64(k.Guarantee))
	h = hashUint64(h, k.Exclusion)
	return h
}

// ExclusionHash folds a quarantined-server set into a 64-bit value,
// independent of iteration order: per-id FNV-1a hashes combined by XOR,
// mixed with the set size so nothing-excluded (0 ids) is distinguishable
// from pathological XOR cancellations.
func ExclusionHash(ids []media.ServerID) uint64 {
	if len(ids) == 0 {
		return 0
	}
	var x uint64
	for _, id := range ids {
		x ^= hashString(uint64(fnvOffset), string(id))
	}
	return hashUint64(x, uint64(len(ids)))
}

func (c *Cache) shardFor(k Key) *shard {
	return &c.shards[k.hash()%numShards]
}

// Lookup returns the memoized candidates — and, when the product was small
// enough to materialize, the built offer list — for k, provided the entry's
// generation stamps match the caller's current (docGen, pricingGen). A
// mismatched entry is removed and reported as Stale — it is never returned.
func (c *Cache) Lookup(k Key, docGen, pricingGen uint64) (offer.Candidates, []offer.SystemOffer, Outcome) {
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, nil, Miss
	}
	if e.docGen != docGen || e.pricingGen != pricingGen {
		s.removeLocked(e)
		s.mu.Unlock()
		c.entries.Add(-1)
		c.invalidations.Add(1)
		c.misses.Add(1)
		return nil, nil, Stale
	}
	s.moveFrontLocked(e)
	cands, offers := e.cands, e.offers
	s.mu.Unlock()
	c.hits.Add(1)
	return cands, offers, Hit
}

// Store memoizes cands (and the optional pre-built offer list, nil when the
// product exceeded MaterializeLimit) under k with the generation stamps they
// were computed from, evicting the shard's least-recently-used entry when
// full. An existing entry under the same key is replaced (the generations may
// have moved between the caller's snapshot and now; the stamps keep it honest
// either way).
func (c *Cache) Store(k Key, docGen, pricingGen uint64, cands offer.Candidates, offers []offer.SystemOffer) {
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		e.docGen, e.pricingGen, e.cands, e.offers = docGen, pricingGen, cands, offers
		s.moveFrontLocked(e)
		s.mu.Unlock()
		return
	}
	var evicted int
	for len(s.entries) >= s.cap && s.tail != nil {
		s.removeLocked(s.tail)
		evicted++
	}
	e := &entry{key: k, docGen: docGen, pricingGen: pricingGen, cands: cands, offers: offers}
	s.entries[k] = e
	s.pushFrontLocked(e)
	s.mu.Unlock()
	c.entries.Add(1 - int64(evicted))
}

// PurgeExclusions drops every entry whose exclusion hash differs from
// current: on a quarantine/restore transition the manager knows the old
// exclusion worlds are unreachable, so their entries are dead weight. Returns
// how many entries were dropped (also counted as invalidations).
func (c *Cache) PurgeExclusions(current uint64) int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			if k.Exclusion != current {
				s.removeLocked(e)
				total++
			}
		}
		s.mu.Unlock()
	}
	if total > 0 {
		c.entries.Add(-int64(total))
		c.invalidations.Add(uint64(total))
	}
	return total
}

// Purge empties the cache, counting every dropped entry as an invalidation.
func (c *Cache) Purge() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n := len(s.entries)
		s.entries = make(map[Key]*entry)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
		total += n
	}
	if total > 0 {
		c.entries.Add(-int64(total))
		c.invalidations.Add(uint64(total))
	}
	return total
}

// Len returns the live entry count.
func (c *Cache) Len() int {
	n := c.entries.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       uint64(c.Len()),
	}
}

// Keys returns the live keys in deterministic order; tests and debug
// surfaces use it.
func (c *Cache) Keys() []Key {
	var out []Key
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			out = append(out, k)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Doc != b.Doc {
			return a.Doc < b.Doc
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.Guarantee != b.Guarantee {
			return a.Guarantee < b.Guarantee
		}
		return a.Exclusion < b.Exclusion
	})
	return out
}

// --- intrusive LRU list, all under the shard mutex ---

func (s *shard) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveFrontLocked(e *entry) {
	if s.head == e {
		return
	}
	s.unlinkLocked(e)
	s.pushFrontLocked(e)
}

func (s *shard) removeLocked(e *entry) {
	s.unlinkLocked(e)
	delete(s.entries, e.key)
}
