package offercache

import (
	"fmt"
	"sync"
	"testing"

	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/offer"
)

func testCands(n int) offer.Candidates {
	c := make(offer.Candidates, 1)
	for i := 0; i < n; i++ {
		c[0] = append(c[0], offer.Candidate{Variant: media.Variant{ID: media.VariantID(fmt.Sprintf("v%d", i))}})
	}
	return c
}

func key(doc string, mach uint64) Key {
	return Key{Doc: media.DocumentID(doc), Machine: mach, Guarantee: cost.Guaranteed}
}

func TestLookupMissHitStale(t *testing.T) {
	c := New(0)
	k := key("doc-1", 42)

	if _, _, out := c.Lookup(k, 1, 1); out != Miss {
		t.Fatalf("lookup of empty cache = %v, want Miss", out)
	}
	cands := testCands(3)
	c.Store(k, 1, 1, cands, nil)
	got, _, out := c.Lookup(k, 1, 1)
	if out != Hit {
		t.Fatalf("lookup after store = %v, want Hit", out)
	}
	if len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("hit returned wrong candidates: %v", got)
	}

	// Document generation moved: stale, dropped, then a clean miss.
	if _, _, out := c.Lookup(k, 2, 1); out != Stale {
		t.Fatalf("lookup with new docGen = %v, want Stale", out)
	}
	if _, _, out := c.Lookup(k, 2, 1); out != Miss {
		t.Fatalf("lookup after stale drop = %v, want Miss", out)
	}

	// Pricing generation moved: same story.
	c.Store(k, 2, 1, cands, nil)
	if _, _, out := c.Lookup(k, 2, 2); out != Stale {
		t.Fatalf("lookup with new pricingGen = %v, want Stale", out)
	}

	st := c.Stats()
	if st.Hits != 1 || st.Invalidations != 2 {
		t.Fatalf("stats = %+v, want 1 hit, 2 invalidations", st)
	}
	if st.Entries != 0 {
		t.Fatalf("entries = %d, want 0 after both stales dropped", st.Entries)
	}
}

func TestStoreMaterializedOffers(t *testing.T) {
	c := New(0)
	k := key("doc-1", 42)
	offers := []offer.SystemOffer{{Document: "doc-1"}, {Document: "doc-1"}}
	c.Store(k, 1, 1, testCands(2), offers)
	_, got, out := c.Lookup(k, 1, 1)
	if out != Hit {
		t.Fatalf("lookup = %v, want Hit", out)
	}
	if len(got) != 2 {
		t.Fatalf("hit returned %d memoized offers, want 2", len(got))
	}
	// A candidates-only entry returns nil offers on hit.
	k2 := key("doc-2", 42)
	c.Store(k2, 1, 1, testCands(2), nil)
	if _, got, out := c.Lookup(k2, 1, 1); out != Hit || got != nil {
		t.Fatalf("candidates-only hit = (%v, %v), want (nil, Hit)", got, out)
	}
	// Stale entries drop the offers with the candidates.
	if _, got, out := c.Lookup(k, 2, 1); out != Stale || got != nil {
		t.Fatalf("stale lookup = (%v, %v), want (nil, Stale)", got, out)
	}
}

func TestKeySeparation(t *testing.T) {
	c := New(0)
	base := key("doc-1", 42)
	c.Store(base, 1, 1, testCands(1), nil)

	for name, k := range map[string]Key{
		"different doc":       key("doc-2", 42),
		"different machine":   key("doc-1", 43),
		"different guarantee": {Doc: "doc-1", Machine: 42, Guarantee: cost.BestEffort},
		"different exclusion": {Doc: "doc-1", Machine: 42, Guarantee: cost.Guaranteed, Exclusion: 7},
	} {
		if _, _, out := c.Lookup(k, 1, 1); out != Miss {
			t.Errorf("%s: lookup = %v, want Miss", name, out)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	// Size 16 → one entry per shard; a second store landing on the same
	// shard must evict the first. Force same-shard collisions by reusing
	// one key's doc and varying only Machine until two keys share a shard.
	c := New(16)
	k1 := key("doc-1", 1)
	s1 := c.shardFor(k1)
	var k2 Key
	for m := uint64(2); ; m++ {
		k2 = key("doc-1", m)
		if c.shardFor(k2) == s1 {
			break
		}
	}
	c.Store(k1, 1, 1, testCands(1), nil)
	c.Store(k2, 1, 1, testCands(1), nil)
	if _, _, out := c.Lookup(k1, 1, 1); out != Miss {
		t.Fatalf("k1 survived eviction; lookup = %v, want Miss", out)
	}
	if _, _, out := c.Lookup(k2, 1, 1); out != Hit {
		t.Fatalf("k2 = %v, want Hit", out)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestLRURecency(t *testing.T) {
	c := New(16)
	k1 := key("doc-1", 1)
	s1 := c.shardFor(k1)
	same := []Key{k1}
	for m := uint64(2); len(same) < 3; m++ {
		k := key("doc-1", m)
		if c.shardFor(k) == s1 {
			same = append(same, k)
		}
	}
	// cap is 1 for size 16; use a cache with room for 2 per shard instead.
	c = New(32)
	c.Store(same[0], 1, 1, testCands(1), nil)
	c.Store(same[1], 1, 1, testCands(1), nil)
	// Touch same[0] so same[1] is the LRU victim.
	if _, _, out := c.Lookup(same[0], 1, 1); out != Hit {
		t.Fatal("warm-up lookup missed")
	}
	c.Store(same[2], 1, 1, testCands(1), nil)
	if _, _, out := c.Lookup(same[0], 1, 1); out != Hit {
		t.Error("recently-used entry was evicted")
	}
	if _, _, out := c.Lookup(same[1], 1, 1); out != Miss {
		t.Error("least-recently-used entry survived")
	}
}

func TestExclusionHash(t *testing.T) {
	if ExclusionHash(nil) != 0 {
		t.Error("empty set must hash to 0")
	}
	a := ExclusionHash([]media.ServerID{"s1", "s2"})
	b := ExclusionHash([]media.ServerID{"s2", "s1"})
	if a != b {
		t.Error("hash must be order-independent")
	}
	if a == ExclusionHash([]media.ServerID{"s1"}) {
		t.Error("subset must hash differently")
	}
	if a == ExclusionHash([]media.ServerID{"s1", "s3"}) {
		t.Error("different set must hash differently")
	}
	if a == 0 {
		t.Error("non-empty set must not collide with the empty hash")
	}
}

func TestPurgeExclusions(t *testing.T) {
	c := New(0)
	world := ExclusionHash([]media.ServerID{"s1"})
	kOld := Key{Doc: "d", Machine: 1}
	kNew := Key{Doc: "d", Machine: 1, Exclusion: world}
	c.Store(kOld, 1, 1, testCands(1), nil)
	c.Store(kNew, 1, 1, testCands(1), nil)

	if n := c.PurgeExclusions(world); n != 1 {
		t.Fatalf("purge dropped %d entries, want 1", n)
	}
	if _, _, out := c.Lookup(kNew, 1, 1); out != Hit {
		t.Error("current-world entry was purged")
	}
	if _, _, out := c.Lookup(kOld, 1, 1); out != Miss {
		t.Error("old-world entry survived the purge")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestPurge(t *testing.T) {
	c := New(0)
	for i := 0; i < 10; i++ {
		c.Store(key("doc", uint64(i)), 1, 1, testCands(1), nil)
	}
	if n := c.Purge(); n != 10 {
		t.Fatalf("purge dropped %d, want 10", n)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after purge", c.Len())
	}
}

func TestKeysDeterministic(t *testing.T) {
	c := New(0)
	c.Store(key("b", 2), 1, 1, testCands(1), nil)
	c.Store(key("a", 1), 1, 1, testCands(1), nil)
	c.Store(key("a", 2), 1, 1, testCands(1), nil)
	ks := c.Keys()
	if len(ks) != 3 || ks[0].Doc != "a" || ks[0].Machine != 1 || ks[2].Doc != "b" {
		t.Fatalf("keys not sorted: %v", ks)
	}
}

// TestConcurrentChurn hammers one hot key plus a churn of cold keys from
// many goroutines under -race: lookups, stores, generation flips and purges
// racing freely must neither corrupt the LRU lists nor leak the entry gauge.
func TestConcurrentChurn(t *testing.T) {
	c := New(64)
	hot := key("hot", 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				gen := uint64(i % 3)
				if cands, _, out := c.Lookup(hot, gen, 0); out == Hit && cands == nil {
					t.Error("hit returned nil candidates")
					return
				}
				c.Store(hot, gen, 0, testCands(1), nil)
				c.Store(key("cold", uint64(w*1000+i)), 1, 1, testCands(1), nil)
				if i%100 == 0 {
					c.PurgeExclusions(0)
				}
				if i%250 == 249 {
					c.Purge()
				}
			}
		}(w)
	}
	wg.Wait()
	// Gauge must agree with an exhaustive key scan.
	if got, want := c.Len(), len(c.Keys()); got != want {
		t.Fatalf("entry gauge = %d but %d keys live", got, want)
	}
}
