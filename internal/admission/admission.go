// Package admission implements SLO-driven admission control for the QoS
// manager: a controller that watches the signals the stack already
// produces — negotiation latency (p99 against a declared SLO), in-flight
// counts and ledger-tracked resource occupancy — and decides, before step
// 1 of the procedure runs, whether new work is admitted or shed with a
// FAILEDTRYLATER carrying a load-derived RetryAfter hint.
//
// The controller adapts on two axes:
//
//   - The concurrency limit follows AIMD: while the windowed p99 of
//     admitted negotiations stays within the SLO the limit grows by one
//     per adjustment interval (additive increase); when the p99 breaches
//     the SLO it halves (multiplicative decrease), down to a floor. Work
//     arriving above the limit is shed, so admitted requests keep seeing
//     bounded queueing and their latency stays within the SLO while
//     goodput plateaus at what the substrate can actually sustain.
//
//   - The RetryAfter hint follows MIAD (the inverse): each shed burst
//     doubles the hint up to a cap (multiplicative increase, so retries
//     spread out as pressure rises), and every healthy adjustment interval
//     walks it back down by a fixed step (additive decrease, so the hint
//     relaxes slowly once the overload clears).
//
// A nil *Controller is fully inert: every method is nil-safe and Admit on
// a nil controller admits at zero cost, so the disabled path adds no
// overhead to the negotiation hot path.
package admission

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qosneg/internal/telemetry"
)

// Metric names exported by the controller; DESIGN.md §13 documents them
// and qosctl stats renders the totals.
// DefaultSLO is the p99 latency target a zero Config defends.
const DefaultSLO = 250 * time.Millisecond

const (
	MetricSheds      = "qosneg_admission_sheds_total"
	MetricAdmitted   = "qosneg_admission_admitted_total"
	MetricInFlight   = "qosneg_admission_inflight"
	MetricLimit      = "qosneg_admission_limit"
	MetricRetryAfter = "qosneg_admission_retry_after_ms"
	MetricP99        = "qosneg_admission_p99_ms"
)

// Config parameterizes a Controller. The zero value of every field selects
// a sensible default; only SLO is commonly set explicitly.
type Config struct {
	// SLO is the declared p99 target for admitted-negotiation latency;
	// the AIMD limit shrinks whenever the windowed p99 breaches it.
	// Default 250ms.
	SLO time.Duration
	// MaxInFlight is the hard ceiling on concurrently admitted
	// negotiations and the AIMD limit's upper bound. Default
	// 16×GOMAXPROCS.
	MaxInFlight int
	// MinInFlight is the AIMD limit's floor: the controller never
	// throttles below it, so a breached SLO degrades throughput gradually
	// instead of collapsing it. Default GOMAXPROCS.
	MinInFlight int
	// Window is how much latency history feeds the p99 estimate.
	// Default 2s.
	Window time.Duration
	// MinRetryAfter and MaxRetryAfter bound the MIAD retry hint.
	// Defaults 100ms and 10s.
	MinRetryAfter time.Duration
	MaxRetryAfter time.Duration
	// HintDecay is the additive decrease applied to the retry hint per
	// healthy adjustment interval. Default 100ms.
	HintDecay time.Duration
	// Occupancy, when non-nil together with MaxOccupancy > 0, is polled on
	// every admission decision; at or above MaxOccupancy new work is shed.
	// The facade wires it to the resource ledger's open-entry count, so a
	// substrate saturated with held reservations refuses new sessions even
	// when negotiation latency still looks healthy.
	Occupancy    func() int
	MaxOccupancy int
	// Clock overrides the time source; tests use it. Default time.Now.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.SLO <= 0 {
		c.SLO = DefaultSLO
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16 * runtime.GOMAXPROCS(0)
	}
	if c.MinInFlight <= 0 {
		c.MinInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MinInFlight > c.MaxInFlight {
		c.MinInFlight = c.MaxInFlight
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Second
	}
	if c.MinRetryAfter <= 0 {
		c.MinRetryAfter = 100 * time.Millisecond
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 10 * time.Second
	}
	if c.MaxRetryAfter < c.MinRetryAfter {
		c.MaxRetryAfter = c.MinRetryAfter
	}
	if c.HintDecay <= 0 {
		c.HintDecay = 100 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// ringSize bounds the latency window's sample buffer; at 4096 samples the
// p99 estimate rests on the freshest ~40 above-p99 observations.
const ringSize = 4096

type sample struct {
	at  time.Time
	lat time.Duration
}

// Controller is the admission gate. Decisions read two atomics (in-flight
// count and limit) plus an optional occupancy poll; the mutex only covers
// the latency window and the periodic AIMD/MIAD adjustment.
type Controller struct {
	cfg Config

	inflight atomic.Int64
	limit    atomic.Int64
	// hintNs is the current RetryAfter in nanoseconds, read lock-free on
	// the shed path.
	hintNs atomic.Int64

	admitted atomic.Uint64
	sheds    atomic.Uint64

	// occ is swappable after construction (the facade binds it to the
	// ledger once the testbed exists).
	occ atomic.Pointer[func() int]

	mu         sync.Mutex
	samples    [ringSize]sample
	head       int // next write position
	count      int
	lastAdjust time.Time
	lastGrow   time.Time
	p99Ns      atomic.Int64 // last computed windowed p99

	// Telemetry, installed by Instrument; all nil-safe when absent.
	shedCtr    *telemetry.Counter
	admitCtr   *telemetry.Counter
	inflightG  *telemetry.Gauge
	limitG     *telemetry.Gauge
	hintG      *telemetry.Gauge
	p99G       *telemetry.Gauge
	growEvery  time.Duration
	adjustWait time.Duration
}

// New builds a controller; zero config fields take defaults.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg}
	c.limit.Store(int64(cfg.MaxInFlight))
	c.hintNs.Store(int64(cfg.MinRetryAfter))
	if cfg.Occupancy != nil {
		fn := cfg.Occupancy
		c.occ.Store(&fn)
	}
	// The hint doubles at most once per growEvery, so a shed storm walks it
	// up in decades rather than saturating on the first burst; the limit
	// adjusts at most once per adjustWait so one slow outlier cannot halve
	// it repeatedly within a single window.
	c.growEvery = 100 * time.Millisecond
	c.adjustWait = cfg.Window / 8
	if c.adjustWait < 25*time.Millisecond {
		c.adjustWait = 25 * time.Millisecond
	}
	return c
}

// SetOccupancy binds the occupancy signal after construction; the facade
// uses it to point the controller at the resource ledger. Nil-safe.
func (c *Controller) SetOccupancy(fn func() int) {
	if c == nil {
		return
	}
	if fn == nil {
		c.occ.Store(nil)
		return
	}
	c.occ.Store(&fn)
}

// Instrument registers the controller's metric series; a nil registry (or
// nil controller) is a no-op.
func (c *Controller) Instrument(reg *telemetry.Registry) {
	if c == nil || reg == nil {
		return
	}
	c.shedCtr = reg.Counter(MetricSheds,
		"Requests refused by the admission controller with a RetryAfter hint.")
	c.admitCtr = reg.Counter(MetricAdmitted,
		"Requests admitted past the controller.")
	c.inflightG = reg.Gauge(MetricInFlight,
		"Currently admitted negotiations in flight.")
	c.limitG = reg.Gauge(MetricLimit,
		"Current AIMD concurrency limit.")
	c.hintG = reg.Gauge(MetricRetryAfter,
		"Current MIAD RetryAfter hint, milliseconds.")
	c.p99G = reg.Gauge(MetricP99,
		"Windowed p99 of admitted-negotiation latency, milliseconds.")
	c.limitG.Set(c.limit.Load())
	c.hintG.Set(int64(time.Duration(c.hintNs.Load()) / time.Millisecond))
}

// SLO returns the declared p99 target; 0 on a nil controller.
func (c *Controller) SLO() time.Duration {
	if c == nil {
		return 0
	}
	return c.cfg.SLO
}

// Admit decides whether one negotiation may run. When admitted it returns
// a release closure the caller must invoke once the negotiation finishes
// (it decrements in-flight and feeds the latency window); retryAfter is
// zero. When shed it returns a nil release and the current load-derived
// RetryAfter hint. A nil controller admits everything with a nil release.
func (c *Controller) Admit() (release func(), retryAfter time.Duration, ok bool) {
	if c == nil {
		return nil, 0, true
	}
	if c.overOccupancy() {
		return nil, c.shed(), false
	}
	if n := c.inflight.Add(1); n > c.limit.Load() {
		c.inflight.Add(-1)
		return nil, c.shed(), false
	}
	c.admitted.Add(1)
	c.admitCtr.Inc()
	c.inflightG.Add(1)
	start := c.cfg.Clock()
	return func() {
		c.inflight.Add(-1)
		c.inflightG.Add(-1)
		c.observe(c.cfg.Clock().Sub(start))
	}, 0, true
}

// Saturated is the protocol server's cheap pre-dispatch probe: it reports
// whether an Admit issued now would shed, without reserving a slot. A true
// answer counts as a shed and returns the hint the busy reply should
// carry. Nil-safe (a nil controller is never saturated).
func (c *Controller) Saturated() (retryAfter time.Duration, saturated bool) {
	if c == nil {
		return 0, false
	}
	if c.inflight.Load() >= c.limit.Load() || c.overOccupancy() {
		return c.shed(), true
	}
	return 0, false
}

// RetryHint returns the current MIAD RetryAfter without recording a shed;
// 0 on a nil controller.
func (c *Controller) RetryHint() time.Duration {
	if c == nil {
		return 0
	}
	return time.Duration(c.hintNs.Load())
}

func (c *Controller) overOccupancy() bool {
	if c.cfg.MaxOccupancy <= 0 {
		return false
	}
	fn := c.occ.Load()
	return fn != nil && (*fn)() >= c.cfg.MaxOccupancy
}

// shed counts one refusal and applies the hint's multiplicative increase,
// rate-limited to once per growEvery so a burst of sheds walks the hint up
// instead of slamming it to the cap.
func (c *Controller) shed() time.Duration {
	c.sheds.Add(1)
	c.shedCtr.Inc()
	now := c.cfg.Clock()
	c.mu.Lock()
	if now.Sub(c.lastGrow) >= c.growEvery {
		c.lastGrow = now
		h := 2 * time.Duration(c.hintNs.Load())
		if h > c.cfg.MaxRetryAfter {
			h = c.cfg.MaxRetryAfter
		}
		c.hintNs.Store(int64(h))
		c.hintG.Set(int64(h / time.Millisecond))
	}
	h := time.Duration(c.hintNs.Load())
	c.mu.Unlock()
	return h
}

// observe feeds one admitted-negotiation latency into the window and, once
// per adjustment interval, re-estimates the p99 and applies AIMD to the
// limit and the additive decrease to the hint.
func (c *Controller) observe(lat time.Duration) {
	now := c.cfg.Clock()
	c.mu.Lock()
	c.samples[c.head] = sample{at: now, lat: lat}
	c.head = (c.head + 1) % ringSize
	if c.count < ringSize {
		c.count++
	}
	if now.Sub(c.lastAdjust) < c.adjustWait {
		c.mu.Unlock()
		return
	}
	c.lastAdjust = now
	p99 := c.p99Locked(now)
	c.p99Ns.Store(int64(p99))
	lim := c.limit.Load()
	if p99 > c.cfg.SLO {
		lim /= 2
		if lim < int64(c.cfg.MinInFlight) {
			lim = int64(c.cfg.MinInFlight)
		}
	} else {
		if lim++; lim > int64(c.cfg.MaxInFlight) {
			lim = int64(c.cfg.MaxInFlight)
		}
		// Healthy interval: walk the retry hint back down additively.
		h := time.Duration(c.hintNs.Load()) - c.cfg.HintDecay
		if h < c.cfg.MinRetryAfter {
			h = c.cfg.MinRetryAfter
		}
		c.hintNs.Store(int64(h))
		c.hintG.Set(int64(h / time.Millisecond))
	}
	c.limit.Store(lim)
	c.mu.Unlock()
	c.limitG.Set(lim)
	c.p99G.Set(int64(p99 / time.Millisecond))
}

// p99Locked estimates the 99th percentile of the samples still inside the
// window. Called with mu held.
func (c *Controller) p99Locked(now time.Time) time.Duration {
	cutoff := now.Add(-c.cfg.Window)
	lats := make([]time.Duration, 0, c.count)
	for i := 0; i < c.count; i++ {
		s := c.samples[(c.head-1-i+2*ringSize)%ringSize]
		if s.at.Before(cutoff) {
			break // samples run newest to oldest; the rest are older still
		}
		lats = append(lats, s.lat)
	}
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := (99*len(lats) + 99) / 100
	if idx > 0 {
		idx--
	}
	return lats[idx]
}

// Stats is a point-in-time snapshot of the controller's state.
type Stats struct {
	// Admitted and Sheds count decisions since construction.
	Admitted uint64
	Sheds    uint64
	// InFlight and Limit are the current occupancy and AIMD bound.
	InFlight int
	Limit    int
	// RetryHint is the hint the next shed would carry.
	RetryHint time.Duration
	// P99 is the last windowed p99 estimate (0 until the first adjustment).
	P99 time.Duration
	// SLO echoes the declared target.
	SLO time.Duration
}

// Stats snapshots the controller; the zero Stats on a nil controller.
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Admitted:  c.admitted.Load(),
		Sheds:     c.sheds.Load(),
		InFlight:  int(c.inflight.Load()),
		Limit:     int(c.limit.Load()),
		RetryHint: time.Duration(c.hintNs.Load()),
		P99:       time.Duration(c.p99Ns.Load()),
		SLO:       c.cfg.SLO,
	}
}
