package admission

import (
	"sync"
	"testing"
	"time"

	"qosneg/internal/telemetry"
)

// fakeClock is a mutable time source tests advance by hand.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	rel, retry, ok := c.Admit()
	if !ok || retry != 0 || rel != nil {
		t.Fatalf("nil controller: Admit() = (rel!=nil:%v, %v, %v), want (nil, 0, true)", rel != nil, retry, ok)
	}
	if d, sat := c.Saturated(); sat || d != 0 {
		t.Fatalf("nil controller: Saturated() = (%v, %v), want (0, false)", d, sat)
	}
	if c.RetryHint() != 0 || c.SLO() != 0 {
		t.Fatalf("nil controller leaks hints: hint %v slo %v", c.RetryHint(), c.SLO())
	}
	c.SetOccupancy(func() int { return 1 }) // must not panic
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil controller stats = %+v, want zero", st)
	}
}

func TestAdmitUpToLimitThenShed(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{SLO: 50 * time.Millisecond, MaxInFlight: 2, MinInFlight: 1, Clock: clk.Now})
	rel1, _, ok1 := c.Admit()
	rel2, _, ok2 := c.Admit()
	if !ok1 || !ok2 {
		t.Fatalf("first two admits refused: %v %v", ok1, ok2)
	}
	if _, retry, ok := c.Admit(); ok {
		t.Fatal("third admit allowed past MaxInFlight=2")
	} else if retry <= 0 {
		t.Fatalf("shed carried RetryAfter %v, want > 0", retry)
	}
	if d, sat := c.Saturated(); !sat || d <= 0 {
		t.Fatalf("Saturated() = (%v, %v) at the limit, want a positive hint", d, sat)
	}
	rel1()
	if _, _, ok := c.Admit(); !ok {
		t.Fatal("admit refused after a release freed a slot")
	}
	rel2()
	st := c.Stats()
	if st.Admitted != 3 || st.Sheds != 2 {
		t.Fatalf("stats = %+v, want 3 admitted / 2 sheds (one refused Admit + one Saturated)", st)
	}
}

func TestHintMIAD(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		SLO: 100 * time.Millisecond, MaxInFlight: 1, MinInFlight: 1,
		MinRetryAfter: 100 * time.Millisecond, MaxRetryAfter: time.Second,
		HintDecay: 100 * time.Millisecond, Window: time.Second, Clock: clk.Now,
	})
	rel, _, _ := c.Admit() // pin the only slot
	// Each shed separated by growEvery doubles the hint up to the cap.
	want := []time.Duration{200, 400, 800, 1000, 1000}
	for i, w := range want {
		clk.Advance(150 * time.Millisecond)
		_, retry, ok := c.Admit()
		if ok {
			t.Fatalf("shed %d admitted", i)
		}
		if retry != w*time.Millisecond {
			t.Fatalf("shed %d: hint %v, want %v", i, retry, w*time.Millisecond)
		}
	}
	rel()
	// Age the pinned slot's (long) latency sample out of the window so the
	// healthy intervals below actually read as healthy.
	clk.Advance(2 * time.Second)
	// Healthy completions walk the hint back down additively.
	for i := 0; i < 3; i++ {
		clk.Advance(200 * time.Millisecond)
		rel, _, ok := c.Admit()
		if !ok {
			t.Fatalf("healthy admit %d refused", i)
		}
		clk.Advance(time.Millisecond)
		rel()
	}
	if h := c.RetryHint(); h != 700*time.Millisecond {
		t.Fatalf("hint after 3 healthy intervals = %v, want 700ms", h)
	}
}

func TestLimitAIMD(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		SLO: 10 * time.Millisecond, MaxInFlight: 64, MinInFlight: 4,
		Window: time.Second, Clock: clk.Now,
	})
	// Slow completions breach the SLO: the limit halves per adjustment.
	slow := func() {
		clk.Advance(200 * time.Millisecond)
		rel, _, ok := c.Admit()
		if !ok {
			t.Fatal("admit refused below the limit")
		}
		clk.Advance(50 * time.Millisecond) // latency 50ms > SLO 10ms
		rel()
	}
	slow()
	if lim := c.Stats().Limit; lim != 32 {
		t.Fatalf("limit after one breach = %d, want 32", lim)
	}
	slow()
	if lim := c.Stats().Limit; lim != 16 {
		t.Fatalf("limit after two breaches = %d, want 16", lim)
	}
	for i := 0; i < 8; i++ {
		slow()
	}
	if lim := c.Stats().Limit; lim != 4 {
		t.Fatalf("limit never drops below MinInFlight: %d, want 4", lim)
	}
	// Fast completions: additive recovery, one per adjustment interval.
	fast := func() {
		clk.Advance(200 * time.Millisecond)
		rel, _, ok := c.Admit()
		if !ok {
			t.Fatal("admit refused below the limit")
		}
		clk.Advance(time.Millisecond)
		rel()
	}
	// The old slow samples must age out of the window first.
	clk.Advance(2 * time.Second)
	fast()
	fast()
	fast()
	if lim := c.Stats().Limit; lim != 7 {
		t.Fatalf("limit after 3 healthy intervals = %d, want 7", lim)
	}
	if p99 := c.Stats().P99; p99 != time.Millisecond {
		t.Fatalf("windowed p99 = %v, want 1ms", p99)
	}
}

func TestOccupancyGate(t *testing.T) {
	clk := newFakeClock()
	occ := 0
	c := New(Config{
		SLO: 50 * time.Millisecond, MaxInFlight: 8,
		Occupancy: func() int { return occ }, MaxOccupancy: 5,
		Clock: clk.Now,
	})
	if _, _, ok := c.Admit(); !ok {
		t.Fatal("admit refused under occupancy cap")
	}
	occ = 5
	if _, retry, ok := c.Admit(); ok || retry <= 0 {
		t.Fatalf("admit at occupancy cap: ok=%v retry=%v, want shed with hint", ok, retry)
	}
	if _, sat := c.Saturated(); !sat {
		t.Fatal("Saturated() false at occupancy cap")
	}
	// SetOccupancy swaps the source live.
	c.SetOccupancy(func() int { return 0 })
	if _, _, ok := c.Admit(); !ok {
		t.Fatal("admit refused after occupancy source swap")
	}
}

func TestInstrumentRecordsDecisions(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	c := New(Config{SLO: 50 * time.Millisecond, MaxInFlight: 1, Clock: clk.Now})
	c.Instrument(reg)
	rel, _, _ := c.Admit()
	c.Admit() // shed
	rel()
	snap := reg.Snapshot()
	if v := snap.CounterValue(MetricAdmitted, ""); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricAdmitted, v)
	}
	if v := snap.CounterValue(MetricSheds, ""); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricSheds, v)
	}
	found := false
	for _, g := range snap.Gauges {
		if g.Name == MetricLimit {
			found = true
		}
	}
	if !found {
		t.Fatalf("%s gauge not registered", MetricLimit)
	}
}

func TestAdmitConcurrent(t *testing.T) {
	c := New(Config{SLO: time.Second, MaxInFlight: 8, MinInFlight: 8})
	var wg sync.WaitGroup
	var admitted, shed atomic64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				rel, retry, ok := c.Admit()
				if ok {
					admitted.add(1)
					rel()
				} else {
					if retry <= 0 {
						t.Error("shed without a RetryAfter hint")
						return
					}
					shed.add(1)
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight %d after full drain, want 0", st.InFlight)
	}
	if st.Admitted != admitted.load() || st.Sheds != shed.load() {
		t.Fatalf("stats %+v disagree with callers (admitted %d, shed %d)", st, admitted.load(), shed.load())
	}
	if st.Admitted == 0 {
		t.Fatal("no request was ever admitted")
	}
}

// atomic64 is a tiny locked counter for cross-goroutine test bookkeeping.
type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) add(d uint64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
