package profilemgr

import (
	"strings"
	"testing"
	"time"

	"qosneg/internal/cost"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
)

func fullProfile() profile.UserProfile {
	return profile.UserProfile{
		Name: "full",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: 480},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Image: &qos.ImageQoS{Color: qos.Color, Resolution: 480},
			Text:  &qos.TextQoS{Language: qos.French},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(8)},
			Time:  profile.TimeProfile{MaxStartDelay: 5 * time.Second, ChoicePeriod: 20 * time.Second},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Grey, FrameRate: 10, Resolution: 100},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Image: &qos.ImageQoS{Color: qos.Grey, Resolution: 100},
			Text:  &qos.TextQoS{Language: qos.French},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(8)},
			Time:  profile.TimeProfile{MaxStartDelay: 5 * time.Second, ChoicePeriod: 20 * time.Second},
		},
		Importance: profile.DefaultImportance(),
	}
}

func TestRenderImageProfile(t *testing.T) {
	u := fullProfile()
	out := RenderImageProfile(u, nil)
	for _, want := range []string{"Image profile", "color", "resolution", "D", "m"} {
		if !strings.Contains(out, want) {
			t.Errorf("image window missing %q:\n%s", want, out)
		}
	}
	offer := &qos.ImageQoS{Color: qos.Grey, Resolution: 300}
	out = RenderImageProfile(u, offer)
	if !strings.Contains(out, "offer") {
		t.Errorf("offer missing:\n%s", out)
	}
	if empty := RenderImageProfile(profile.UserProfile{}, nil); !strings.Contains(empty, "no image requirement") {
		t.Error("placeholder missing")
	}
}

func TestRenderTextProfile(t *testing.T) {
	u := fullProfile()
	out := RenderTextProfile(u, nil)
	if !strings.Contains(out, "french") {
		t.Errorf("text window:\n%s", out)
	}
	out = RenderTextProfile(u, &qos.TextQoS{Language: qos.English})
	if !strings.Contains(out, "english") {
		t.Errorf("offer missing:\n%s", out)
	}
	if empty := RenderTextProfile(profile.UserProfile{}, nil); !strings.Contains(empty, "no text requirement") {
		t.Error("placeholder missing")
	}
}

func TestRenderTimeProfile(t *testing.T) {
	out := RenderTimeProfile(fullProfile())
	if !strings.Contains(out, "5s") || !strings.Contains(out, "20s") {
		t.Errorf("time window:\n%s", out)
	}
	// A profile without an explicit choice period shows the default.
	u := fullProfile()
	u.Desired.Time.ChoicePeriod = 0
	if out := RenderTimeProfile(u); !strings.Contains(out, "default") {
		t.Errorf("default choice period missing:\n%s", out)
	}
}

func TestRenderImportanceProfile(t *testing.T) {
	u := fullProfile()
	out := RenderImportanceProfile(u)
	for _, want := range []string{"Importance profile", "video color", "frame rate", "telephone 5", "CD 9", "cost importance: 1 per $"} {
		if !strings.Contains(out, want) {
			t.Errorf("importance window missing %q:\n%s", want, out)
		}
	}
	// The §3 example (2): audio more important than video — the window
	// shows the shifted weights.
	u.Importance.AudioGrade[qos.CDQuality] = 20
	out = RenderImportanceProfile(u)
	if !strings.Contains(out, "CD 20") {
		t.Errorf("edited importance missing:\n%s", out)
	}
}
