package profilemgr

import (
	"errors"
	"strings"
	"testing"
	"time"

	"qosneg/internal/cost"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
)

func store(t *testing.T) *profile.Store {
	t.Helper()
	s := profile.NewStore()
	for _, p := range profile.DefaultProfiles() {
		if err := s.Save(p); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestRenderMainWindow(t *testing.T) {
	s := store(t)
	out := RenderMain(s, "premium")
	for _, want := range []string{"Main window", "tv-quality (default)", "> premium", "[OK]", "[EXIT]"} {
		if !strings.Contains(out, want) {
			t.Errorf("main window missing %q:\n%s", want, out)
		}
	}
}

func TestRenderComponentsRedFlags(t *testing.T) {
	s := store(t)
	u, _ := s.Get("tv-quality")
	out := RenderComponents(u, map[string]bool{"video": true})
	if !strings.Contains(out, "[RED]") {
		t.Errorf("red flag missing:\n%s", out)
	}
	// The red flag is on the video row.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "video") && !strings.Contains(line, "[RED]") {
			t.Errorf("video row not flagged: %s", line)
		}
		if strings.Contains(line, "audio") && strings.Contains(line, "[RED]") {
			t.Errorf("audio row wrongly flagged: %s", line)
		}
	}
}

func TestRenderVideoProfileBars(t *testing.T) {
	s := store(t)
	u, _ := s.Get("tv-quality")
	out := RenderVideoProfile(u, nil)
	for _, want := range []string{"Video profile", "frame rate", "resolution", "D", "m", "[show example]"} {
		if !strings.Contains(out, want) {
			t.Errorf("video profile missing %q:\n%s", want, out)
		}
	}
	// With an offer, the offer marker and line appear.
	offer := &qos.VideoQoS{Color: qos.Grey, FrameRate: 20, Resolution: 480}
	out = RenderVideoProfile(u, offer)
	if !strings.Contains(out, "offer") || !strings.Contains(out, "grey") {
		t.Errorf("offer missing:\n%s", out)
	}
	// No video requirement renders a placeholder.
	empty := RenderVideoProfile(profile.UserProfile{}, nil)
	if !strings.Contains(empty, "no video requirement") {
		t.Error("placeholder missing")
	}
}

func TestRenderInformationWindow(t *testing.T) {
	// Failure without offer: status only.
	out := RenderInformation(InfoResult{Status: "FAILEDTRYLATER", Reason: "resources shortage"})
	if !strings.Contains(out, "FAILEDTRYLATER") || !strings.Contains(out, "resources shortage") {
		t.Errorf("failure window:\n%s", out)
	}
	if strings.Contains(out, "Press OK within") {
		t.Error("failure window must not show the confirmation prompt")
	}
	// Success: offer, cost and choice period.
	v := qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: 480}
	offer := profile.MMProfile{Video: &v, Cost: profile.CostProfile{MaxCost: cost.Dollars(5)}}
	out = RenderInformation(InfoResult{
		Status: "SUCCEEDED", Offer: &offer, Cost: cost.Dollars(5), ChoicePeriod: "30s",
	})
	for _, want := range []string{"SUCCEEDED", "color", "5$", "Press OK within 30s", "[CANCEL]"} {
		if !strings.Contains(out, want) {
			t.Errorf("success window missing %q:\n%s", want, out)
		}
	}
}

func TestFailedSections(t *testing.T) {
	s := store(t)
	u, _ := s.Get("tv-quality")
	// Offer below the desired video quality and over budget.
	offer := profile.MMProfile{
		Video: &qos.VideoQoS{Color: qos.Grey, FrameRate: 25, Resolution: 480},
		Audio: u.Desired.Audio,
		Cost:  profile.CostProfile{MaxCost: cost.Dollars(9)},
	}
	failed := FailedSections(u, offer)
	if !failed["video"] || !failed["cost"] {
		t.Errorf("failed = %v", failed)
	}
	if failed["audio"] {
		t.Error("audio wrongly flagged")
	}
	// Matching offer: nothing flagged.
	failed = FailedSections(u, profile.MMProfile{
		Video: u.Desired.Video,
		Audio: u.Desired.Audio,
		Cost:  profile.CostProfile{MaxCost: cost.Dollars(5)},
	})
	if len(failed) != 0 {
		t.Errorf("failed = %v", failed)
	}
	// Missing medium is flagged.
	failed = FailedSections(u, profile.MMProfile{Video: u.Desired.Video})
	if !failed["audio"] {
		t.Error("missing audio not flagged")
	}
}

// scripted is a negotiation stub for flow tests.
type scripted struct {
	out       Outcome
	err       error
	calls     int
	confirmed bool
	rejected  bool
}

func (s *scripted) negotiate(profile.UserProfile) (Outcome, error) {
	s.calls++
	out := s.out
	if out.Confirm == nil && out.Offer != nil {
		out.Confirm = func() error { s.confirmed = true; return nil }
		out.Reject = func() error { s.rejected = true; return nil }
	}
	return out, s.err
}

func successOutcome() Outcome {
	v := qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: 480}
	return Outcome{
		Status:       "SUCCEEDED",
		Offer:        &profile.MMProfile{Video: &v, Audio: &qos.AudioQoS{Grade: qos.CDQuality}, Cost: profile.CostProfile{MaxCost: cost.Dollars(5)}},
		Cost:         cost.Dollars(5),
		ChoicePeriod: 30 * time.Second,
	}
}

func TestFlowHappyPath(t *testing.T) {
	s := store(t)
	stub := &scripted{out: successOutcome()}
	f := NewFlow(s, stub.negotiate)
	if f.State() != StateMain {
		t.Fatalf("initial state %v", f.State())
	}
	if f.Selected() != "tv-quality" {
		t.Errorf("default selection = %s", f.Selected())
	}
	if err := f.Select("premium"); err != nil {
		t.Fatal(err)
	}
	if err := f.OK(); err != nil {
		t.Fatal(err)
	}
	if f.State() != StateInformation {
		t.Fatalf("state after OK = %v", f.State())
	}
	if err := f.Accept(); err != nil {
		t.Fatal(err)
	}
	if f.State() != StatePlaying || !stub.confirmed {
		t.Errorf("state=%v confirmed=%v", f.State(), stub.confirmed)
	}
	// Transcript captured every window.
	if len(f.Transcript) != 4 {
		t.Errorf("transcript windows = %d", len(f.Transcript))
	}
	if !strings.Contains(f.Transcript[2], "Information window") {
		t.Error("information window missing from transcript")
	}
}

func TestFlowCancelRenegotiation(t *testing.T) {
	s := store(t)
	stub := &scripted{out: successOutcome()}
	f := NewFlow(s, stub.negotiate)
	f.OK()
	if err := f.Cancel(); err != nil {
		t.Fatal(err)
	}
	if f.State() != StateMain || !stub.rejected {
		t.Errorf("state=%v rejected=%v", f.State(), stub.rejected)
	}
	// Renegotiate right away.
	if err := f.OK(); err != nil {
		t.Fatal(err)
	}
	if stub.calls != 2 {
		t.Errorf("negotiations = %d", stub.calls)
	}
}

func TestFlowTimeout(t *testing.T) {
	s := store(t)
	stub := &scripted{out: successOutcome()}
	f := NewFlow(s, stub.negotiate)
	f.OK()
	if err := f.Timeout(); err != nil {
		t.Fatal(err)
	}
	if f.State() != StateMain || !stub.rejected {
		t.Errorf("state=%v rejected=%v", f.State(), stub.rejected)
	}
	if f.Outcome() != nil {
		t.Error("outcome must be cleared after timeout")
	}
}

func TestFlowFailureWithoutOffer(t *testing.T) {
	s := store(t)
	stub := &scripted{out: Outcome{Status: "FAILEDTRYLATER", Reason: "shortage"}}
	f := NewFlow(s, stub.negotiate)
	f.OK()
	if f.State() != StateInformation {
		t.Fatalf("state = %v", f.State())
	}
	// Acknowledging a failure returns to the main window.
	if err := f.Accept(); err != nil {
		t.Fatal(err)
	}
	if f.State() != StateMain {
		t.Errorf("state = %v", f.State())
	}
}

func TestFlowEditShowsRedFlags(t *testing.T) {
	s := store(t)
	// Offer that undercuts tv-quality's desired color.
	out := successOutcome()
	out.Status = "FAILEDWITHOFFER"
	out.Offer.Video.Color = qos.Grey
	stub := &scripted{out: out}
	f := NewFlow(s, stub.negotiate)
	f.OK()
	if err := f.Edit(); err != nil {
		t.Fatal(err)
	}
	if f.State() != StateComponents {
		t.Fatalf("state = %v", f.State())
	}
	win := f.Render()
	if !strings.Contains(win, "[RED]") {
		t.Errorf("component window lacks red flags:\n%s", win)
	}
	if err := f.Back(); err != nil {
		t.Fatal(err)
	}
	if f.State() != StateMain {
		t.Errorf("state = %v", f.State())
	}
}

func TestFlowSaveProfile(t *testing.T) {
	s := store(t)
	stub := &scripted{out: successOutcome()}
	f := NewFlow(s, stub.negotiate)
	f.Edit()
	edited, _ := s.Get("tv-quality")
	edited.Name = "tv-quality-custom"
	if err := f.Save(edited); err != nil {
		t.Fatal(err)
	}
	if f.Selected() != "tv-quality-custom" {
		t.Errorf("selected = %s", f.Selected())
	}
	if _, err := s.Get("tv-quality-custom"); err != nil {
		t.Error("profile not saved")
	}
}

func TestFlowBadTransitions(t *testing.T) {
	s := store(t)
	stub := &scripted{out: successOutcome()}
	f := NewFlow(s, stub.negotiate)
	if err := f.Accept(); !errors.Is(err, ErrBadTransition) {
		t.Errorf("Accept in main: %v", err)
	}
	if err := f.Cancel(); !errors.Is(err, ErrBadTransition) {
		t.Errorf("Cancel in main: %v", err)
	}
	if err := f.Select("ghost"); err == nil {
		t.Error("selecting a ghost profile accepted")
	}
	if err := f.Exit(); err != nil {
		t.Fatal(err)
	}
	if f.State() != StateExited {
		t.Errorf("state = %v", f.State())
	}
	if err := f.OK(); !errors.Is(err, ErrBadTransition) {
		t.Errorf("OK after exit: %v", err)
	}
	if State(9).String() == "" || StateMain.String() != "main" {
		t.Error("state names")
	}
}

func TestBarClamping(t *testing.T) {
	// Out-of-range values land on the bar's edges rather than panicking.
	line := bar(0, 10, 15, -3, nil)
	if !strings.Contains(line, "D") || !strings.Contains(line, "m") {
		t.Errorf("bar = %s", line)
	}
	// Degenerate range.
	line = bar(5, 5, 5, 5, nil)
	if line == "" {
		t.Error("degenerate bar empty")
	}
}
