package profilemgr

import (
	"errors"
	"fmt"
	"time"

	"qosneg/internal/cost"
	"qosneg/internal/profile"
)

// Outcome is what the flow's negotiation callback returns: the negotiation
// result plus the confirm/reject continuations of step 6. Confirm and
// Reject may be nil when no resources were reserved.
type Outcome struct {
	Status       string
	Offer        *profile.MMProfile
	Cost         cost.Money
	ChoicePeriod time.Duration
	Reason       string
	Violations   []string
	Confirm      func() error
	Reject       func() error
}

// State is the window the flow currently displays.
type State int

// The flow states, one per GUI window plus the terminal states.
const (
	StateMain State = iota
	StateComponents
	StateInformation
	StatePlaying
	StateExited
)

var stateNames = [...]string{"main", "components", "information", "playing", "exited"}

// String names the state.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// ErrBadTransition is returned for window actions that do not apply to the
// current window.
var ErrBadTransition = errors.New("profilemgr: action not available in this window")

// Flow is the QoS GUI window flow: main window → (negotiate) → information
// window → confirmation, with the profile component window reachable for
// editing and for inspecting red constraint flags after a failure.
type Flow struct {
	store     *profile.Store
	negotiate func(profile.UserProfile) (Outcome, error)

	state    State
	selected string
	outcome  *Outcome
	failed   map[string]bool
	// Transcript accumulates every window rendered, in order; the
	// profiletool prints it and tests assert on it.
	Transcript []string
}

// NewFlow builds a window flow over a profile store and a negotiation
// callback.
func NewFlow(store *profile.Store, negotiate func(profile.UserProfile) (Outcome, error)) *Flow {
	f := &Flow{store: store, negotiate: negotiate, state: StateMain}
	if d, err := store.Default(); err == nil {
		f.selected = d.Name
	}
	f.record()
	return f
}

// State returns the current window.
func (f *Flow) State() State { return f.state }

// Selected returns the selected profile name.
func (f *Flow) Selected() string { return f.selected }

// Outcome returns the last negotiation outcome, if any.
func (f *Flow) Outcome() *Outcome { return f.outcome }

// record renders the current window onto the transcript.
func (f *Flow) record() {
	f.Transcript = append(f.Transcript, f.Render())
}

// Render renders the current window.
func (f *Flow) Render() string {
	switch f.state {
	case StateMain:
		return RenderMain(f.store, f.selected)
	case StateComponents:
		u, err := f.store.Get(f.selected)
		if err != nil {
			return box("Profile component window", []string{"(no profile selected)"})
		}
		return RenderComponents(u, f.failed)
	case StateInformation:
		r := InfoResult{Status: "?"}
		if f.outcome != nil {
			r = InfoResult{
				Status:       f.outcome.Status,
				Offer:        f.outcome.Offer,
				Cost:         f.outcome.Cost,
				ChoicePeriod: f.outcome.ChoicePeriod.String(),
				Reason:       f.outcome.Reason,
			}
		}
		return RenderInformation(r)
	case StatePlaying:
		return box("Player", []string{"Delivery in progress..."})
	default:
		return box("QoS GUI", []string{"(exited)"})
	}
}

// Select highlights a profile in the main window.
func (f *Flow) Select(name string) error {
	if f.state != StateMain {
		return ErrBadTransition
	}
	if _, err := f.store.Get(name); err != nil {
		return err
	}
	f.selected = name
	f.record()
	return nil
}

// OK in the main window starts the negotiation with the selected profile
// and moves to the information window ("When the user selects the desired
// user profile, he/she clicks on OK to start negotiation").
func (f *Flow) OK() error {
	if f.state != StateMain {
		return ErrBadTransition
	}
	u, err := f.store.Get(f.selected)
	if err != nil {
		return err
	}
	out, err := f.negotiate(u)
	if err != nil {
		return err
	}
	f.outcome = &out
	f.failed = nil
	if out.Offer != nil {
		f.failed = FailedSections(u, *out.Offer)
	}
	f.state = StateInformation
	f.record()
	return nil
}

// Edit opens the profile component window (double-click on a profile).
// After a failed negotiation it shows the red constraint flags.
func (f *Flow) Edit() error {
	if f.state != StateMain && f.state != StateInformation {
		return ErrBadTransition
	}
	f.state = StateComponents
	f.record()
	return nil
}

// Save stores the (externally edited) profile and returns to the main
// window.
func (f *Flow) Save(u profile.UserProfile) error {
	if f.state != StateComponents {
		return ErrBadTransition
	}
	if err := f.store.Save(u); err != nil {
		return err
	}
	f.selected = u.Name
	f.state = StateMain
	f.record()
	return nil
}

// Back returns from the component window to the main window without
// saving.
func (f *Flow) Back() error {
	if f.state != StateComponents {
		return ErrBadTransition
	}
	f.state = StateMain
	f.record()
	return nil
}

// Accept is OK in the information window: confirm the reserved offer and
// start the delivery.
func (f *Flow) Accept() error {
	if f.state != StateInformation {
		return ErrBadTransition
	}
	if f.outcome == nil || f.outcome.Confirm == nil {
		// Failure without reservation: acknowledging returns to the main
		// window.
		f.state = StateMain
		f.record()
		return nil
	}
	if err := f.outcome.Confirm(); err != nil {
		return err
	}
	f.state = StatePlaying
	f.record()
	return nil
}

// Cancel is CANCEL in the information window: reject the offer (releasing
// the reserved resources) and return to the main window for renegotiation.
func (f *Flow) Cancel() error {
	if f.state != StateInformation {
		return ErrBadTransition
	}
	if f.outcome != nil && f.outcome.Reject != nil {
		if err := f.outcome.Reject(); err != nil {
			return err
		}
	}
	f.state = StateMain
	f.record()
	return nil
}

// Renegotiate models the Section 8 flow "modify the offer and then push OK
// to initiate a renegotiation": from the information window, the edited
// profile is saved and the negotiation re-run; the flow stays in the
// information window showing the new outcome.
func (f *Flow) Renegotiate(u profile.UserProfile) error {
	if f.state != StateInformation {
		return ErrBadTransition
	}
	// The previous reservation is surrendered before the new attempt (the
	// core manager's Renegotiate does the same internally when driven
	// directly; at the window level the negotiate callback owns it).
	if f.outcome != nil && f.outcome.Reject != nil {
		if err := f.outcome.Reject(); err != nil {
			return err
		}
	}
	if err := f.store.Save(u); err != nil {
		return err
	}
	f.selected = u.Name
	out, err := f.negotiate(u)
	if err != nil {
		return err
	}
	f.outcome = &out
	f.failed = nil
	if out.Offer != nil {
		f.failed = FailedSections(u, *out.Offer)
	}
	f.record()
	return nil
}

// Timeout models the choicePeriod expiring before the user pressed OK:
// "the session is simply aborted and a new negotiation is required".
func (f *Flow) Timeout() error {
	if f.state != StateInformation {
		return ErrBadTransition
	}
	if f.outcome != nil && f.outcome.Reject != nil {
		f.outcome.Reject()
	}
	f.outcome = nil
	f.state = StateMain
	f.record()
	return nil
}

// Exit leaves the GUI from the main window.
func (f *Flow) Exit() error {
	if f.state != StateMain {
		return ErrBadTransition
	}
	f.state = StateExited
	f.record()
	return nil
}
