// Package profilemgr is the reproduction's profile manager: the component
// that owns user profiles and the QoS GUI of Section 8. The original was
// built with AIC/Motif on X11; here every window of Figures 3–7 is a
// deterministic text rendering, and the window flow (main window → profile
// component window → profile windows → information window, with the
// choicePeriod confirmation timer) is a state machine that examples and
// tests can drive programmatically.
package profilemgr

import (
	"fmt"
	"strings"

	"qosneg/internal/cost"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
)

const windowWidth = 62

// box renders a titled window frame around the given lines.
func box(title string, lines []string) string {
	var b strings.Builder
	inner := windowWidth - 2
	pad := inner - len(title) - 2
	left := pad / 2
	right := pad - left
	fmt.Fprintf(&b, "+%s %s %s+\n", strings.Repeat("-", left), title, strings.Repeat("-", right))
	for _, l := range lines {
		if len(l) > inner-2 {
			l = l[:inner-5] + "..."
		}
		fmt.Fprintf(&b, "| %-*s |\n", inner-2, l)
	}
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", inner))
	return b.String()
}

// bar renders a scaling bar for an integer parameter: the profile windows'
// "scaling bars and predefined values" (Section 8). Markers: D desired,
// m worst acceptable (minimum), o the system's offer (when present).
func bar(lo, hi, desired, min int, offer *int) string {
	const width = 30
	cells := make([]byte, width)
	for i := range cells {
		cells[i] = '-'
	}
	place := func(v int, mark byte) {
		if hi == lo {
			return
		}
		pos := (v - lo) * (width - 1) / (hi - lo)
		if pos < 0 {
			pos = 0
		}
		if pos >= width {
			pos = width - 1
		}
		cells[pos] = mark
	}
	place(min, 'm')
	place(desired, 'D')
	if offer != nil {
		place(*offer, 'o')
	}
	return fmt.Sprintf("%4d |%s| %d", lo, string(cells), hi)
}

// RenderMain renders the main window (Figure 3): the profile list with the
// default marked, the selected profile highlighted, and the window's
// buttons. Pushing OK starts the negotiation.
func RenderMain(s *profile.Store, selected string) string {
	lines := []string{"User profiles:"}
	def := ""
	if d, err := s.Default(); err == nil {
		def = d.Name
	}
	for _, name := range s.List() {
		marker := "  "
		if name == selected {
			marker = "> "
		}
		suffix := ""
		if name == def {
			suffix = " (default)"
		}
		lines = append(lines, "  "+marker+name+suffix)
	}
	lines = append(lines, "", "[OK] [Edit] [Delete] [Set default] [EXIT]")
	return box("Main window", lines)
}

// RenderComponents renders the profile component window (Figure 4): the
// monomedia, time and cost profiles of the selected user profile, with the
// constraint buttons of unsatisfiable profiles "activated with red color"
// — rendered as a [RED] tag — after a failed negotiation.
func RenderComponents(u profile.UserProfile, failed map[string]bool) string {
	lines := []string{fmt.Sprintf("Profile: %s", u.Name), ""}
	row := func(name, detail string) {
		flag := "     "
		if failed[name] {
			flag = "[RED]"
		}
		lines = append(lines, fmt.Sprintf("  %s %-8s %s", flag, name, detail))
	}
	if u.Desired.Video != nil {
		row("video", u.Desired.Video.String())
	}
	if u.Desired.Audio != nil {
		row("audio", u.Desired.Audio.String())
	}
	if u.Desired.Image != nil {
		row("image", u.Desired.Image.String())
	}
	if u.Desired.Text != nil {
		row("text", u.Desired.Text.String())
	}
	row("cost", fmt.Sprintf("max %s (%s)", u.Desired.Cost.MaxCost, u.Desired.Cost.Guarantee))
	row("time", fmt.Sprintf("start %s choice %s", u.Desired.Time.MaxStartDelay, choiceOf(u)))
	lines = append(lines, "", "[Save] [Save as] [CANCEL]")
	return box("Profile component window", lines)
}

func choiceOf(u profile.UserProfile) string {
	if u.Desired.Time.ChoicePeriod > 0 {
		return u.Desired.Time.ChoicePeriod.String()
	}
	return "default"
}

// RenderVideoProfile renders the video profile window (Figure 5): one
// scaling bar per QoS parameter with the desired value, the minimum
// acceptable value and — after a failed negotiation — the offer bar.
func RenderVideoProfile(u profile.UserProfile, offer *qos.VideoQoS) string {
	d, w := u.Desired.Video, u.Worst.Video
	if d == nil || w == nil {
		return box("Video profile", []string{"(no video requirement)"})
	}
	var offRate, offRes *int
	offerLine := ""
	if offer != nil {
		offRate, offRes = &offer.FrameRate, &offer.Resolution
		offerLine = fmt.Sprintf("offer: %s", offer)
	}
	lines := []string{
		fmt.Sprintf("color      desired %-12s min %s", d.Color, w.Color),
		"frame rate " + bar(qos.FrozenRate, qos.HDTVRate, d.FrameRate, w.FrameRate, offRate),
		"resolution " + bar(qos.MinResolution, qos.HDTVResolution, d.Resolution, w.Resolution, offRes),
	}
	if offer != nil {
		lines = append(lines, fmt.Sprintf("offer color %s", offer.Color), offerLine)
	}
	lines = append(lines, "", "[OK] [Save] [Save as] [show example] [CANCEL]")
	return box("Video profile", lines)
}

// RenderAudioProfile renders the audio profile window.
func RenderAudioProfile(u profile.UserProfile, offer *qos.AudioQoS) string {
	d, w := u.Desired.Audio, u.Worst.Audio
	if d == nil || w == nil {
		return box("Audio profile", []string{"(no audio requirement)"})
	}
	lines := []string{
		fmt.Sprintf("quality    desired %-12s min %s", d.Grade, w.Grade),
	}
	if d.Language != "" {
		lines = append(lines, fmt.Sprintf("language   %s", d.Language))
	}
	if offer != nil {
		lines = append(lines, fmt.Sprintf("offer: %s", offer))
	}
	lines = append(lines, "", "[OK] [Save] [Save as] [show example] [CANCEL]")
	return box("Audio profile", lines)
}

// RenderCostProfile renders the cost profile window.
func RenderCostProfile(u profile.UserProfile, offered cost.Money) string {
	lines := []string{
		fmt.Sprintf("maximum cost    %s", u.Desired.Cost.MaxCost),
		fmt.Sprintf("guarantee       %s", u.Desired.Cost.Guarantee),
		fmt.Sprintf("cost importance %.3g per $", u.Importance.CostPerDollar),
	}
	if offered > 0 {
		lines = append(lines, fmt.Sprintf("offered cost    %s", offered))
	}
	lines = append(lines, "", "[OK] [Save] [Save as] [CANCEL]")
	return box("Cost profile", lines)
}

// RenderImageProfile renders the image profile window.
func RenderImageProfile(u profile.UserProfile, offer *qos.ImageQoS) string {
	d, w := u.Desired.Image, u.Worst.Image
	if d == nil || w == nil {
		return box("Image profile", []string{"(no image requirement)"})
	}
	var offRes *int
	lines := []string{
		fmt.Sprintf("color      desired %-12s min %s", d.Color, w.Color),
	}
	if offer != nil {
		offRes = &offer.Resolution
	}
	lines = append(lines, "resolution "+bar(qos.MinResolution, qos.HDTVResolution, d.Resolution, w.Resolution, offRes))
	if offer != nil {
		lines = append(lines, fmt.Sprintf("offer: %s", offer))
	}
	lines = append(lines, "", "[OK] [Save] [Save as] [show example] [CANCEL]")
	return box("Image profile", lines)
}

// RenderTextProfile renders the text profile window.
func RenderTextProfile(u profile.UserProfile, offer *qos.TextQoS) string {
	d := u.Desired.Text
	if d == nil {
		return box("Text profile", []string{"(no text requirement)"})
	}
	lines := []string{fmt.Sprintf("language   %s", d.Language)}
	if offer != nil {
		lines = append(lines, fmt.Sprintf("offer: %s", offer))
	}
	lines = append(lines, "", "[OK] [Save] [Save as] [CANCEL]")
	return box("Text profile", lines)
}

// RenderTimeProfile renders the time profile window ("specified in terms of
// seconds", Figure 2).
func RenderTimeProfile(u profile.UserProfile) string {
	lines := []string{
		fmt.Sprintf("max start delay  %s", u.Desired.Time.MaxStartDelay),
		fmt.Sprintf("choice period    %s", choiceOf(u)),
	}
	lines = append(lines, "", "[OK] [Save] [Save as] [CANCEL]")
	return box("Time profile", lines)
}

// RenderImportanceProfile renders the importance window: Section 3's
// facility for the user to "set importance values for QoS parameters of
// interest" — which media matter, which parameters within them, and how
// much a dollar weighs against quality.
func RenderImportanceProfile(u profile.UserProfile) string {
	im := u.Importance
	lines := []string{"QoS parameter importances:"}
	colorLine := func(label string, m map[qos.ColorQuality]float64) string {
		return fmt.Sprintf("%s  b&w %.3g  grey %.3g  color %.3g  super %.3g",
			label, m[qos.BlackWhite], m[qos.Grey], m[qos.Color], m[qos.SuperColor])
	}
	lines = append(lines, "  "+colorLine("video color ", im.VideoColor))
	lines = append(lines, fmt.Sprintf("  frame rate    frozen %.3g  TV %.3g  HDTV %.3g",
		im.FrameRate.Eval(qos.FrozenRate), im.FrameRate.Eval(qos.TVRate), im.FrameRate.Eval(qos.HDTVRate)))
	lines = append(lines, fmt.Sprintf("  resolution    min %.3g  TV %.3g  HDTV %.3g",
		im.Resolution.Eval(qos.MinResolution), im.Resolution.Eval(qos.TVResolution), im.Resolution.Eval(qos.HDTVResolution)))
	lines = append(lines, fmt.Sprintf("  audio quality telephone %.3g  CD %.3g",
		im.AudioGrade[qos.TelephoneQuality], im.AudioGrade[qos.CDQuality]))
	if len(im.Language) > 0 {
		lines = append(lines, fmt.Sprintf("  language      english %.3g  french %.3g",
			im.Language[qos.English], im.Language[qos.French]))
	}
	lines = append(lines, fmt.Sprintf("cost importance: %.3g per $", im.CostPerDollar))
	lines = append(lines, "", "[OK] [Save] [Save as] [CANCEL]")
	return box("Importance profile", lines)
}

// InfoResult is the input of the information window.
type InfoResult struct {
	// Status is the paper-style negotiation status name.
	Status string
	// Offer is present when the system reserved a configuration.
	Offer *profile.MMProfile
	// Cost is the price of the reserved offer.
	Cost cost.Money
	// ChoicePeriod documents the confirmation window.
	ChoicePeriod string
	// Reason explains failures.
	Reason string
}

// RenderInformation renders the information window (Figure 6): the
// negotiation status — FAILEDTRYLATER or FAILEDWITHOUTOFFER on failure, the
// QoS parameter values and cost otherwise — and the OK button governed by
// the choicePeriod timer.
func RenderInformation(r InfoResult) string {
	lines := []string{fmt.Sprintf("Negotiation result: %s", r.Status)}
	if r.Reason != "" {
		lines = append(lines, "  "+r.Reason)
	}
	if r.Offer != nil {
		lines = append(lines, "", "The system offers:")
		if r.Offer.Video != nil {
			lines = append(lines, fmt.Sprintf("  video %s", r.Offer.Video))
		}
		if r.Offer.Audio != nil {
			lines = append(lines, fmt.Sprintf("  audio %s", r.Offer.Audio))
		}
		if r.Offer.Image != nil {
			lines = append(lines, fmt.Sprintf("  image %s", r.Offer.Image))
		}
		if r.Offer.Text != nil {
			lines = append(lines, fmt.Sprintf("  text  %s", r.Offer.Text))
		}
		lines = append(lines, fmt.Sprintf("  cost  %s", r.Cost))
		lines = append(lines, "", fmt.Sprintf("Press OK within %s to start the delivery.", r.ChoicePeriod))
		lines = append(lines, "", "[OK] [CANCEL]")
	} else {
		lines = append(lines, "", "[OK]")
	}
	return box("Information window", lines)
}

// FailedSections derives the red constraint flags of the profile component
// window: the media whose offered QoS falls short of the desired profile,
// plus "cost" when the offer exceeds the budget.
func FailedSections(u profile.UserProfile, offer profile.MMProfile) map[string]bool {
	failed := make(map[string]bool)
	if d := u.Desired.Video; d != nil {
		if offer.Video == nil || !offer.Video.Satisfies(*d) {
			failed["video"] = true
		}
	}
	if d := u.Desired.Audio; d != nil {
		if offer.Audio == nil || !offer.Audio.Satisfies(*d) {
			failed["audio"] = true
		}
	}
	if d := u.Desired.Image; d != nil {
		if offer.Image == nil || !offer.Image.Satisfies(*d) {
			failed["image"] = true
		}
	}
	if d := u.Desired.Text; d != nil {
		if offer.Text == nil || !offer.Text.Satisfies(*d) {
			failed["text"] = true
		}
	}
	if offer.Cost.MaxCost > u.Desired.Cost.MaxCost {
		failed["cost"] = true
	}
	return failed
}
