package profilemgr

import (
	"errors"
	"testing"

	"qosneg/internal/qos"
)

func TestFlowRenegotiate(t *testing.T) {
	s := store(t)
	stub := &scripted{out: successOutcome()}
	f := NewFlow(s, stub.negotiate)
	if err := f.OK(); err != nil {
		t.Fatal(err)
	}
	// The user edits the profile and renegotiates from the information
	// window.
	edited, _ := s.Get("tv-quality")
	edited.Desired.Video.FrameRate = 30
	edited.Worst.Video.FrameRate = 20
	if err := f.Renegotiate(edited); err != nil {
		t.Fatal(err)
	}
	if f.State() != StateInformation {
		t.Errorf("state = %v", f.State())
	}
	if stub.calls != 2 {
		t.Errorf("negotiations = %d", stub.calls)
	}
	if !stub.rejected {
		t.Error("previous reservation not surrendered")
	}
	// The edited profile was saved.
	saved, err := s.Get("tv-quality")
	if err != nil {
		t.Fatal(err)
	}
	if saved.Desired.Video.FrameRate != 30 {
		t.Errorf("profile not saved: %+v", saved.Desired.Video)
	}
	// The renegotiated offer can still be accepted.
	if err := f.Accept(); err != nil {
		t.Fatal(err)
	}
	if f.State() != StatePlaying {
		t.Errorf("state = %v", f.State())
	}
}

func TestFlowRenegotiateRedFlags(t *testing.T) {
	s := store(t)
	out := successOutcome()
	out.Status = "FAILEDWITHOFFER"
	out.Offer.Video.Color = qos.Grey
	stub := &scripted{out: out}
	f := NewFlow(s, stub.negotiate)
	f.OK()
	edited, _ := s.Get("tv-quality")
	if err := f.Renegotiate(edited); err != nil {
		t.Fatal(err)
	}
	f.Edit()
	if win := f.Render(); !containsRed(win) {
		t.Errorf("red flags missing after renegotiation:\n%s", win)
	}
}

func containsRed(s string) bool {
	for i := 0; i+4 < len(s); i++ {
		if s[i:i+5] == "[RED]" {
			return true
		}
	}
	return false
}

func TestFlowRenegotiateBadState(t *testing.T) {
	s := store(t)
	stub := &scripted{out: successOutcome()}
	f := NewFlow(s, stub.negotiate)
	u, _ := s.Get("tv-quality")
	if err := f.Renegotiate(u); !errors.Is(err, ErrBadTransition) {
		t.Errorf("renegotiate from main: %v", err)
	}
	// Invalid profile is rejected without losing the window.
	f.OK()
	bad := u.Clone()
	bad.Name = ""
	if err := f.Renegotiate(bad); err == nil {
		t.Error("invalid profile accepted")
	}
	if f.State() != StateInformation {
		t.Errorf("state = %v", f.State())
	}
}
