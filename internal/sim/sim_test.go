package sim

import (
	"testing"
	"time"
)

func TestEventsFireInOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.MustSchedule(3*time.Second, func() { got = append(got, 3) })
	e.MustSchedule(1*time.Second, func() { got = append(got, 1) })
	e.MustSchedule(2*time.Second, func() { got = append(got, 2) })
	if n := e.RunAll(); n != 3 {
		t.Fatalf("fired %d events", n)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order = %v", got)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("final time %v", e.Now())
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.MustSchedule(time.Second, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v", got)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(-time.Second, func() {}); err == nil {
		t.Error("negative delay accepted")
	}
	e.MustSchedule(time.Second, func() {})
	e.RunAll()
	if _, err := e.At(0, func() {}); err == nil {
		t.Error("scheduling in the past accepted")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.MustSchedule(time.Second, func() {
		times = append(times, e.Now())
		e.MustSchedule(2*time.Second, func() {
			times = append(times, e.Now())
		})
	})
	e.RunAll()
	if len(times) != 2 || times[0] != time.Second || times[1] != 3*time.Second {
		t.Errorf("times = %v", times)
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 5; i++ {
		e.MustSchedule(time.Duration(i)*time.Second, func() { fired++ })
	}
	if n := e.Run(3 * time.Second); n != 3 {
		t.Errorf("Run fired %d events", n)
	}
	if fired != 3 {
		t.Errorf("fired = %d", fired)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("clock at %v", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d", e.Pending())
	}
	// Horizon beyond the last event advances the clock to the horizon.
	e.Run(10 * time.Second)
	if e.Now() != 10*time.Second || e.Pending() != 0 {
		t.Errorf("after drain: now=%v pending=%d", e.Now(), e.Pending())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.MustSchedule(time.Second, func() { fired = true })
	if h.Cancelled() {
		t.Error("fresh handle reports cancelled")
	}
	e.Cancel(h)
	if !h.Cancelled() {
		t.Error("cancelled handle reports live")
	}
	e.RunAll()
	if fired {
		t.Error("cancelled event fired")
	}
	if (Handle{}).Cancelled() != true {
		t.Error("zero handle counts as cancelled")
	}
	e.Cancel(Handle{}) // must not panic
}

func TestCancelInterleavedWithRun(t *testing.T) {
	e := NewEngine()
	var got []string
	var h2 Handle
	e.MustSchedule(time.Second, func() {
		got = append(got, "a")
		e.Cancel(h2) // cancel an event already queued for later
	})
	h2 = e.MustSchedule(2*time.Second, func() { got = append(got, "b") })
	e.MustSchedule(3*time.Second, func() { got = append(got, "c") })
	e.RunAll()
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("got = %v", got)
	}
}

func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []time.Duration {
		e := NewEngine()
		r := NewRand(seed)
		var out []time.Duration
		var arrive func()
		arrive = func() {
			out = append(out, e.Now())
			if len(out) < 50 {
				e.MustSchedule(r.Exp(time.Second), arrive)
			}
		}
		e.MustSchedule(0, arrive)
		e.RunAll()
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestRandDistributions(t *testing.T) {
	r := NewRand(7)
	// Exponential mean sanity: 10k draws with mean 1s should average
	// within 5%.
	var sum time.Duration
	const n = 10000
	for i := 0; i < n; i++ {
		sum += r.Exp(time.Second)
	}
	mean := float64(sum) / n / float64(time.Second)
	if mean < 0.95 || mean > 1.05 {
		t.Errorf("exponential mean = %.3f s", mean)
	}
	// Zipf skew: rank 0 must dominate.
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[r.Zipf(10, 1.2)]++
	}
	if counts[0] <= counts[5] {
		t.Errorf("zipf not skewed: %v", counts)
	}
	// Perm is a permutation.
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
	if r.Intn(1) != 0 {
		t.Error("Intn(1) must be 0")
	}
	if f := r.Float64(); f < 0 || f >= 1 {
		t.Errorf("Float64 = %g", f)
	}
}

func TestStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty calendar returned true")
	}
	if e.Now() != 0 {
		t.Error("clock moved without events")
	}
}
