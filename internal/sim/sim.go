// Package sim provides the deterministic discrete-event simulation engine
// that underlies the reproduction's experiments: playout sessions, workload
// arrival processes, congestion injection and adaptation timing all run on
// its virtual clock. Events fire in timestamp order with FIFO tie-breaking,
// so a given seed always reproduces the same trajectory.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
}

// NewEngine returns an engine at virtual time zero with an empty calendar.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return e.queue.Len() }

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ ev *event }

// Cancelled reports whether the event was cancelled (or the zero Handle).
func (h Handle) Cancelled() bool { return h.ev == nil || h.ev.cancelled }

// Schedule runs fn at now+delay. A negative delay is an error; a zero delay
// fires after the currently executing event completes.
func (e *Engine) Schedule(delay time.Duration, fn func()) (Handle, error) {
	if delay < 0 {
		return Handle{}, fmt.Errorf("sim: negative delay %v", delay)
	}
	return e.At(e.now+delay, fn)
}

// MustSchedule is Schedule that panics on error; for literals known to be
// non-negative.
func (e *Engine) MustSchedule(delay time.Duration, fn func()) Handle {
	h, err := e.Schedule(delay, fn)
	if err != nil {
		panic(err)
	}
	return h
}

// At runs fn at absolute virtual time t, which must not lie in the past.
func (e *Engine) At(t time.Duration, fn func()) (Handle, error) {
	if t < e.now {
		return Handle{}, fmt.Errorf("sim: time %v is in the past (now %v)", t, e.now)
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev: ev}, nil
}

// Cancel prevents a scheduled event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op.
func (e *Engine) Cancel(h Handle) {
	if h.ev != nil {
		h.ev.cancelled = true
	}
}

// Step fires the next event, advancing the clock to its timestamp. It
// returns false when the calendar is empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the calendar is empty or the next event lies
// beyond the horizon; the clock then advances to the horizon. It returns
// the number of events fired.
func (e *Engine) Run(horizon time.Duration) int {
	fired := 0
	for {
		ev := e.queue.peek()
		for ev != nil && ev.cancelled {
			heap.Pop(&e.queue)
			ev = e.queue.peek()
		}
		if ev == nil || ev.at > horizon {
			break
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		ev.fn()
		fired++
	}
	if horizon > e.now {
		e.now = horizon
	}
	return fired
}

// RunAll fires every event until the calendar drains; it returns the number
// of events fired. Self-perpetuating processes (an arrival process that
// always schedules its successor) never drain — bound those with Run.
func (e *Engine) RunAll() int {
	fired := 0
	for e.Step() {
		fired++
	}
	return fired
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
func (q eventQueue) peek() *event {
	if len(q) == 0 {
		return nil
	}
	return q[0]
}

// Rand is a deterministic random source for workload generation. It wraps
// math/rand with the distributions the experiments need.
type Rand struct {
	r     *rand.Rand
	zipfs map[zipfKey]*rand.Zipf
}

// NewRand returns a Rand seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform integer in [0, n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Exp returns an exponentially distributed duration with the given mean;
// the inter-arrival law of the experiments' Poisson processes.
func (r *Rand) Exp(mean time.Duration) time.Duration {
	return time.Duration(r.r.ExpFloat64() * float64(mean))
}

// Zipf returns a Zipf-distributed integer in [0, n) with exponent s > 1,
// modelling document popularity skew. The generator for each (n, s) pair is
// cached, so repeated draws are cheap.
func (r *Rand) Zipf(n int, s float64) int {
	key := zipfKey{n: n, s: s}
	z, ok := r.zipfs[key]
	if !ok {
		z = rand.NewZipf(r.r, s, 1, uint64(n-1))
		if r.zipfs == nil {
			r.zipfs = make(map[zipfKey]*rand.Zipf)
		}
		r.zipfs[key] = z
	}
	return int(z.Uint64())
}

type zipfKey struct {
	n int
	s float64
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }
