package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for i := 0; i < 10; i++ {
		h.Observe(500 * time.Microsecond) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond) // second bucket
	}
	h.Observe(2 * time.Second) // +Inf bucket

	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(s.Histograms))
	}
	p := s.Histograms[0]
	if p.Count != 21 {
		t.Fatalf("count = %d, want 21", p.Count)
	}
	wantCum := []uint64{10, 20, 20}
	for i, b := range p.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket[%d] = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	// Median falls in the second bucket (1ms..10ms); interpolated ≈ 1.45ms.
	if q := p.Quantile(0.5); q < time.Millisecond || q > 10*time.Millisecond {
		t.Fatalf("p50 = %v, want within (1ms, 10ms)", q)
	}
	// p99 lands in the +Inf bucket and clamps to the last finite bound.
	if q := p.Quantile(0.99); q != 100*time.Millisecond {
		t.Fatalf("p99 = %v, want clamp to 100ms", q)
	}
	if q := (HistogramPoint{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestFamilies(t *testing.T) {
	r := NewRegistry()
	cf := r.CounterFamily("req_total", "requests", "kind")
	cf.With("a").Add(2)
	cf.With("b").Inc()
	if cf.With("a") != cf.With("a") {
		t.Fatalf("family series not stable")
	}
	gf := r.GaugeFamily("depth", "queue depth", "queue")
	gf.With("q1").Set(3)
	hf := r.HistogramFamily("op_seconds", "op latency", "op", []float64{0.01, 0.1})
	hf.With("read").Observe(5 * time.Millisecond)

	s := r.Snapshot()
	if got := s.CounterValue("req_total", ""); got != 3 {
		t.Fatalf("summed counters = %d, want 3", got)
	}
	if got := s.CounterValue("req_total", "a"); got != 2 {
		t.Fatalf("label-a counter = %d, want 2", got)
	}
	if _, ok := s.Find("op_seconds", "read"); !ok {
		t.Fatalf("Find(op_seconds, read) missed")
	}
	if _, ok := s.Find("op_seconds", "write"); ok {
		t.Fatalf("Find(op_seconds, write) matched unexpectedly")
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "jobs processed").Add(3)
	r.Gauge("workers", "live workers").Set(2)
	r.CounterFamily("outcomes_total", "by status", "status").With("ok").Inc()
	r.Histogram("lat_seconds", "latency", []float64{0.01}).Observe(time.Millisecond)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP jobs_total jobs processed",
		"# TYPE jobs_total counter",
		"jobs_total 3",
		"# TYPE workers gauge",
		"workers 2",
		`outcomes_total{status="ok"} 1`,
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_sum 0.001",
		"lat_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, body)
		}
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Inc()
	r.Histogram("h_seconds", "", []float64{0.1}).Observe(time.Millisecond)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 1 {
		t.Fatalf("round-trip counters = %+v", back.Counters)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Count != 1 {
		t.Fatalf("round-trip histograms = %+v", back.Histograms)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	r.PublishExpvar("telemetry_test_snapshot")
	r.PublishExpvar("telemetry_test_snapshot") // must not panic
	v := expvar.Get("telemetry_test_snapshot")
	if v == nil {
		t.Fatalf("expvar not published")
	}
	if !strings.Contains(v.String(), "x_total") {
		t.Fatalf("expvar body missing counter: %s", v.String())
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Trace(Event{Step: StepCommitment, Detail: string(rune('0' + i))})
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(ev))
	}
	if ev[0].Detail != "3" || ev[2].Detail != "5" {
		t.Fatalf("ring order = %v..%v, want 3..5", ev[0].Detail, ev[2].Detail)
	}
	half := NewRing(4)
	half.Trace(Event{Step: StepRedial})
	if got := half.Events(); len(got) != 1 || got[0].Step != StepRedial {
		t.Fatalf("partial ring events = %+v", got)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, (*Ring)(nil)) != nil {
		t.Fatalf("Multi of nothing should be nil")
	}
	a, b := NewRing(2), NewRing(2)
	m := Multi(nil, a, b)
	m.Trace(Event{Step: StepQuarantine, Server: "s1"})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatalf("multi did not fan out")
	}
	if Multi(a) != Tracer(a) {
		t.Fatalf("single-tracer Multi should unwrap")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Step: StepCommitment, Offer: "video", Server: "s1", Status: "SUCCEEDED", Elapsed: time.Millisecond, Detail: "OIF=0.5"}
	s := e.String()
	for _, want := range []string{"commitment", "offer=video", "server=s1", "status=SUCCEEDED", "elapsed=1ms", "OIF=0.5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Event.String() = %q missing %q", s, want)
		}
	}
	if got := Step(200).String(); got != "unknown" {
		t.Fatalf("unknown step = %q", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("h_seconds", "", LatencyBuckets)
	f := r.CounterFamily("f_total", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(time.Duration(j) * time.Microsecond)
				f.With([]string{"a", "b"}[i%2]).Inc()
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	s := r.Snapshot()
	if got := s.CounterValue("f_total", ""); got != 8000 {
		t.Fatalf("family total = %d, want 8000", got)
	}
}

// TestNoopTelemetryZeroAlloc pins the disabled state: a nil registry, the
// nil metrics it hands out, nil families, nil rings — every operation on
// them must allocate nothing. scripts/check.sh gates on this test.
func TestNoopTelemetryZeroAlloc(t *testing.T) {
	var (
		c  = Noop.Counter("c_total", "")
		g  = Noop.Gauge("g", "")
		h  = Noop.Histogram("h_seconds", "", LatencyBuckets)
		cf = Noop.CounterFamily("cf_total", "", "k")
		gf = Noop.GaugeFamily("gf", "", "k")
		hf = Noop.HistogramFamily("hf_seconds", "", "k", LatencyBuckets)
		rg *Ring
	)
	if c != nil || g != nil || h != nil || cf != nil || gf != nil || hf != nil {
		t.Fatalf("nil registry must hand out nil metrics")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		_ = c.Value()
		g.Set(1)
		g.Add(-1)
		_ = g.Value()
		h.Observe(time.Millisecond)
		_ = h.Count()
		cf.With("a").Inc()
		gf.With("a").Set(1)
		hf.With("a").Observe(time.Millisecond)
		rg.Trace(Event{Step: StepCommitment})
		_ = Noop.Snapshot()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocated %.1f per run, want 0", allocs)
	}
}

func TestEnabledHistogramObserveZeroAlloc(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", LatencyBuckets)
	c := r.Counter("c_total", "")
	cf := r.CounterFamily("cf_total", "", "k")
	series := cf.With("steady") // hot paths cache the series
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(750 * time.Microsecond)
		c.Inc()
		series.Inc()
	})
	if allocs != 0 {
		t.Fatalf("enabled hot path allocated %.1f per run, want 0", allocs)
	}
}
