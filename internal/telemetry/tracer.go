package telemetry

import (
	"sync"
	"time"
)

// Step identifies a phase of the QoS negotiation procedure (the six steps
// of the paper's §4) or one of the failure-handling paths layered on top.
type Step uint8

const (
	// StepLocalNegotiation is step 1: the local negotiation between the
	// application profile and the client machine's capabilities.
	StepLocalNegotiation Step = iota + 1
	// StepCompatibilityCheck is step 2: checking server offers against the
	// locally negotiated QoS envelope.
	StepCompatibilityCheck
	// StepClassificationParams is step 3: gathering the classification
	// parameters (cost tables, orderings) for the compatible offers.
	StepClassificationParams
	// StepClassification is step 4: classifying (ranking) the offers. The
	// fused top-K pipeline performs steps 2–4 in one pass; it emits a
	// single StepClassification span covering all three.
	StepClassification
	// StepCommitment is step 5: resource commitment at servers and network.
	StepCommitment
	// StepConfirmation is step 6: the user's confirmation of the reserved
	// configuration within the choice period.
	StepConfirmation
	// StepSkipDead marks an offer skipped because its server is known dead
	// in the current run.
	StepSkipDead
	// StepQuarantine marks a server entering breaker quarantine.
	StepQuarantine
	// StepRedial marks a protocol client re-establishing its connection.
	StepRedial
	// StepAdaptation marks a renegotiation triggered by observed
	// degradation (the paper's adaptation phase).
	StepAdaptation
)

var stepNames = [...]string{
	StepLocalNegotiation:     "local-negotiation",
	StepCompatibilityCheck:   "compatibility-check",
	StepClassificationParams: "classification-params",
	StepClassification:       "classification",
	StepCommitment:           "commitment",
	StepConfirmation:         "confirmation",
	StepSkipDead:             "skip-dead",
	StepQuarantine:           "quarantine",
	StepRedial:               "redial",
	StepAdaptation:           "adaptation",
}

// String returns the canonical span name; allocation-free.
func (s Step) String() string {
	if int(s) < len(stepNames) && stepNames[s] != "" {
		return stepNames[s]
	}
	return "unknown"
}

// Event is one structured span event. Fields beyond Step are optional;
// rendering (String) is deferred until a consumer actually wants text, so
// emitting an event to a Ring costs no formatting.
type Event struct {
	// Step is the negotiation phase or failure path this event belongs to.
	Step Step
	// Offer is the monomedia/offer key concerned, when any.
	Offer string
	// Server is the media server concerned, when any.
	Server string
	// Status carries an outcome word (e.g. a NegotiationStatus or failure
	// cause name), when any.
	Status string
	// Detail is free-form extra context; producers must only build it when
	// telemetry is enabled.
	Detail string
	// Elapsed is the span duration for timed steps, 0 for point events.
	Elapsed time.Duration
}

// String renders the event for logs; this is the lazy part — only called
// by text consumers, never on the recording path.
func (e Event) String() string {
	s := e.Step.String()
	if e.Offer != "" {
		s += " offer=" + e.Offer
	}
	if e.Server != "" {
		s += " server=" + e.Server
	}
	if e.Status != "" {
		s += " status=" + e.Status
	}
	if e.Elapsed != 0 {
		s += " elapsed=" + e.Elapsed.String()
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Tracer consumes span events. Implementations must be safe for concurrent
// use; Trace must not retain references into the event beyond the call.
type Tracer interface {
	Trace(Event)
}

// LogTracer adapts a printf-style logger into a Tracer.
func LogTracer(logf func(format string, args ...any)) Tracer {
	return logTracer{logf}
}

type logTracer struct {
	logf func(format string, args ...any)
}

func (l logTracer) Trace(e Event) { l.logf("trace: %s", e.String()) }

// Ring is a fixed-capacity circular buffer of recent events, the live
// negotiation-trace surface served by qosnegd's debug endpoint. The zero
// value and nil are inert.
type Ring struct {
	mu     sync.Mutex
	events []Event
	next   int
	filled bool
}

// NewRing returns a ring retaining the last n events (min 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{events: make([]Event, n)}
}

// Trace records one event. Safe on a nil or zero-value ring.
func (r *Ring) Trace(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.events) > 0 {
		r.events[r.next] = e
		r.next++
		if r.next == len(r.events) {
			r.next = 0
			r.filled = true
		}
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Multi fans one event out to several tracers, skipping nils. Returns nil
// when no non-nil tracer remains, so callers can keep a plain nil check as
// their enabled test.
func Multi(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		if t != nil {
			// A nil *Ring arrives as a non-nil interface; keep it anyway —
			// Ring.Trace is nil-safe — but drop typed nils we can see.
			if r, ok := t.(*Ring); ok && r == nil {
				continue
			}
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiTracer(live)
}

type multiTracer []Tracer

func (m multiTracer) Trace(e Event) {
	for _, t := range m {
		t.Trace(e)
	}
}
