// Package telemetry is the observability substrate of the reproduction: a
// dependency-free metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms with lock-free hot-path recording, plus labeled
// families for per-server and per-status series) and a typed span tracer
// for the negotiation procedure.
//
// The paper's QoS manager is explicitly a monitoring entity — the
// adaptation procedure of Section 4 acts when the manager *observes* a QoS
// degradation — and the related QoS-management literature grounds
// adaptation decisions in continuously collected measurements. This package
// produces those measurements for the rest of the system: internal/core
// records negotiation outcomes and per-step latencies, internal/protocol
// records per-RPC latencies and errors on both ends of the wire, and
// internal/cmfs / internal/network record reservation admission decisions.
//
// # Disabled telemetry is free
//
// The disabled state is a nil *Registry (the package-level Noop). Every
// constructor on a nil registry returns a nil metric, every method on a nil
// metric or family is an inert no-op, and callers are expected to guard
// any detail *rendering* (fmt.Sprintf and friends) behind an enabled check.
// TestNoopTelemetryZeroAlloc pins the whole disabled surface to zero
// allocations.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Noop is the disabled registry: a typed nil. Constructing metrics from it
// yields nil metrics whose methods cost nothing; use it (or simply a nil
// *Registry) wherever telemetry is optional.
var Noop *Registry

// LatencyBuckets is the default histogram bucketing for operation
// latencies, in seconds: 50µs to 5s in a roughly 1-2.5-5 progression. The
// negotiation procedure on the default testbed lands around a millisecond,
// wire RPCs in the hundreds of microseconds, and fault-injected or
// quarantine-throttled paths in the hundreds of milliseconds, so the range
// covers both ends with headroom.
var LatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5,
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (negative to decrement). Safe on a nil gauge.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket latency histogram with lock-free recording:
// Observe is a bucket search plus three atomic adds, no locks and no
// allocations.
type Histogram struct {
	// bounds are the inclusive upper bucket bounds in seconds, ascending;
	// an implicit +Inf bucket follows.
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sumNs  atomic.Int64
}

// Observe records one duration. Safe on a nil histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations; 0 on a nil histogram.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// point snapshots the histogram into a HistogramPoint with cumulative
// bucket counts.
func (h *Histogram) point(name string, labels map[string]string) HistogramPoint {
	p := HistogramPoint{
		Name:   name,
		Labels: labels,
		Count:  h.count.Load(),
		Sum:    time.Duration(h.sumNs.Load()).Seconds(),
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		p.Buckets = append(p.Buckets, BucketPoint{LE: b, Count: cum})
	}
	return p
}

// CounterFamily is a set of counters sharing a name, distinguished by one
// label (per-server, per-status, per-RPC-type series).
type CounterFamily struct {
	name, help, label string
	mu                sync.RWMutex
	series            map[string]*Counter
}

// With returns the counter for one label value, creating it on first use.
// Safe on a nil family (returns a nil counter).
func (f *CounterFamily) With(value string) *Counter {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	c := f.series[value]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.series[value]; c != nil {
		return c
	}
	c = &Counter{}
	f.series[value] = c
	return c
}

// GaugeFamily is a set of gauges sharing a name, distinguished by one label.
type GaugeFamily struct {
	name, help, label string
	mu                sync.RWMutex
	series            map[string]*Gauge
}

// With returns the gauge for one label value, creating it on first use.
// Safe on a nil family (returns a nil gauge).
func (f *GaugeFamily) With(value string) *Gauge {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	g := f.series[value]
	f.mu.RUnlock()
	if g != nil {
		return g
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if g := f.series[value]; g != nil {
		return g
	}
	g = &Gauge{}
	f.series[value] = g
	return g
}

// HistogramFamily is a set of histograms sharing a name and bucketing,
// distinguished by one label (per-step, per-RPC-type latency series).
type HistogramFamily struct {
	name, help, label string
	bounds            []float64
	mu                sync.RWMutex
	series            map[string]*Histogram
}

// With returns the histogram for one label value, creating it on first use.
// Safe on a nil family (returns a nil histogram).
func (f *HistogramFamily) With(value string) *Histogram {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	h := f.series[value]
	f.mu.RUnlock()
	if h != nil {
		return h
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if h := f.series[value]; h != nil {
		return h
	}
	h = newHistogram(f.bounds)
	f.series[value] = h
	return h
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// kind discriminates registry entries.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFamily
	kindGaugeFamily
	kindHistogramFamily
)

// entry is one registered metric or family, in registration order.
type entry struct {
	kind       kind
	name, help string
	c          *Counter
	g          *Gauge
	h          *Histogram
	cf         *CounterFamily
	gf         *GaugeFamily
	hf         *HistogramFamily
}

// Registry holds named metrics and renders them as a Snapshot, Prometheus
// text exposition or expvar. Constructors are idempotent: asking for an
// already-registered name of the same kind returns the existing metric, so
// components may be instrumented repeatedly (e.g. several cmfs servers
// sharing one per-server family). A nil *Registry is the disabled state.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byName  map[string]*entry
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// lookup returns the existing entry for name, or registers a new one built
// by mk. It panics when name is already registered with a different kind —
// a programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, k kind, mk func(*entry)) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different kind", name))
		}
		return e
	}
	e := &entry{kind: k, name: name, help: help}
	mk(e)
	r.entries = append(r.entries, e)
	r.byName[name] = e
	return e
}

// Counter registers (or returns) a counter. Nil registry returns nil.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge registers (or returns) a gauge. Nil registry returns nil.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, func(e *entry) { e.g = &Gauge{} }).g
}

// Histogram registers (or returns) a histogram with the given bucket upper
// bounds in seconds (ascending; an implicit +Inf bucket is appended). Nil
// registry returns nil.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	validateBuckets(name, buckets)
	return r.lookup(name, help, kindHistogram, func(e *entry) { e.h = newHistogram(buckets) }).h
}

// CounterFamily registers (or returns) a labeled counter family. Nil
// registry returns nil.
func (r *Registry) CounterFamily(name, help, label string) *CounterFamily {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounterFamily, func(e *entry) {
		e.cf = &CounterFamily{name: name, help: help, label: label, series: make(map[string]*Counter)}
	}).cf
}

// GaugeFamily registers (or returns) a labeled gauge family. Nil registry
// returns nil.
func (r *Registry) GaugeFamily(name, help, label string) *GaugeFamily {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGaugeFamily, func(e *entry) {
		e.gf = &GaugeFamily{name: name, help: help, label: label, series: make(map[string]*Gauge)}
	}).gf
}

// HistogramFamily registers (or returns) a labeled histogram family. Nil
// registry returns nil.
func (r *Registry) HistogramFamily(name, help, label string, buckets []float64) *HistogramFamily {
	if r == nil {
		return nil
	}
	validateBuckets(name, buckets)
	return r.lookup(name, help, kindHistogramFamily, func(e *entry) {
		e.hf = &HistogramFamily{name: name, help: help, label: label, bounds: buckets, series: make(map[string]*Histogram)}
	}).hf
}

func validateBuckets(name string, buckets []float64) {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", name))
		}
	}
}

// sortedKeys returns map keys in sorted order for stable rendering.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot is a point-in-time, JSON-serializable copy of every registered
// metric; the wire protocol ships it to qosctl and expvar publishes it
// under /debug/vars.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

// CounterPoint is one counter series in a snapshot.
type CounterPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  uint64            `json:"value"`
}

// GaugePoint is one gauge series in a snapshot.
type GaugePoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// HistogramPoint is one histogram series in a snapshot. Buckets carry
// cumulative counts for the finite upper bounds; Count additionally covers
// the implicit +Inf bucket.
type HistogramPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	// Sum is the accumulated observed time in seconds.
	Sum     float64       `json:"sum"`
	Buckets []BucketPoint `json:"buckets,omitempty"`
}

// BucketPoint is one cumulative histogram bucket.
type BucketPoint struct {
	// LE is the bucket's inclusive upper bound in seconds.
	LE float64 `json:"le"`
	// Count is the cumulative number of observations ≤ LE.
	Count uint64 `json:"count"`
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of the observed latency by
// linear interpolation inside the owning bucket, the standard
// fixed-bucket estimator. Observations beyond the last finite bound clamp
// to that bound. Returns 0 when the histogram is empty.
func (h HistogramPoint) Quantile(q float64) time.Duration {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var prevCum uint64
	prevBound := 0.0
	for _, b := range h.Buckets {
		if float64(b.Count) >= rank {
			span := float64(b.Count - prevCum)
			frac := 1.0
			if span > 0 {
				frac = (rank - float64(prevCum)) / span
			}
			sec := prevBound + (b.LE-prevBound)*frac
			return time.Duration(sec * float64(time.Second))
		}
		prevCum = b.Count
		prevBound = b.LE
	}
	// Rank falls in the +Inf bucket: clamp to the largest finite bound.
	return time.Duration(h.Buckets[len(h.Buckets)-1].LE * float64(time.Second))
}

// Snapshot copies every registered metric. Safe on a nil registry (returns
// an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			s.Counters = append(s.Counters, CounterPoint{Name: e.name, Value: e.c.Value()})
		case kindGauge:
			s.Gauges = append(s.Gauges, GaugePoint{Name: e.name, Value: e.g.Value()})
		case kindHistogram:
			s.Histograms = append(s.Histograms, e.h.point(e.name, nil))
		case kindCounterFamily:
			e.cf.mu.RLock()
			for _, k := range sortedKeys(e.cf.series) {
				s.Counters = append(s.Counters, CounterPoint{
					Name: e.name, Labels: map[string]string{e.cf.label: k}, Value: e.cf.series[k].Value(),
				})
			}
			e.cf.mu.RUnlock()
		case kindGaugeFamily:
			e.gf.mu.RLock()
			for _, k := range sortedKeys(e.gf.series) {
				s.Gauges = append(s.Gauges, GaugePoint{
					Name: e.name, Labels: map[string]string{e.gf.label: k}, Value: e.gf.series[k].Value(),
				})
			}
			e.gf.mu.RUnlock()
		case kindHistogramFamily:
			e.hf.mu.RLock()
			for _, k := range sortedKeys(e.hf.series) {
				s.Histograms = append(s.Histograms, e.hf.series[k].point(e.name, map[string]string{e.hf.label: k}))
			}
			e.hf.mu.RUnlock()
		}
	}
	return s
}

// Find returns the first snapshot histogram with the given name whose
// labels contain labelValue (any key); labelValue "" matches an unlabeled
// series. A rendering convenience for qosctl.
func (s Snapshot) Find(name, labelValue string) (HistogramPoint, bool) {
	for _, h := range s.Histograms {
		if h.Name != name {
			continue
		}
		if labelValue == "" && len(h.Labels) == 0 {
			return h, true
		}
		for _, v := range h.Labels {
			if v == labelValue {
				return h, true
			}
		}
	}
	return HistogramPoint{}, false
}

// CounterValue sums the snapshot counters with the given name whose labels
// contain labelValue (any key, "" for unlabeled or all series).
func (s Snapshot) CounterValue(name, labelValue string) uint64 {
	var total uint64
	for _, c := range s.Counters {
		if c.Name != name {
			continue
		}
		if labelValue == "" {
			total += c.Value
			continue
		}
		for _, v := range c.Labels {
			if v == labelValue {
				total += c.Value
			}
		}
	}
	return total
}
