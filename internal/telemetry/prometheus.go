package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE preambles, one sample line
// per series, histograms expanded into cumulative `_bucket{le=...}` plus
// `_sum` and `_count`. Safe on a nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	bw := &errWriter{w: w}

	// Snapshot preserves registration order within each metric class, and
	// every series of one name lands contiguously, so a single pass per
	// class emits each HELP/TYPE preamble exactly once.
	help := r.helpIndex()

	last := ""
	for _, c := range s.Counters {
		if c.Name != last {
			writePreamble(bw, c.Name, help[c.Name], "counter")
			last = c.Name
		}
		fmt.Fprintf(bw, "%s%s %d\n", c.Name, promLabels(c.Labels, "", 0), c.Value)
	}
	last = ""
	for _, g := range s.Gauges {
		if g.Name != last {
			writePreamble(bw, g.Name, help[g.Name], "gauge")
			last = g.Name
		}
		fmt.Fprintf(bw, "%s%s %d\n", g.Name, promLabels(g.Labels, "", 0), g.Value)
	}
	last = ""
	for _, h := range s.Histograms {
		if h.Name != last {
			writePreamble(bw, h.Name, help[h.Name], "histogram")
			last = h.Name
		}
		for _, b := range h.Buckets {
			fmt.Fprintf(bw, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, "le", b.LE), b.Count)
		}
		fmt.Fprintf(bw, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, "le", math.Inf(1)), h.Count)
		fmt.Fprintf(bw, "%s_sum%s %g\n", h.Name, promLabels(h.Labels, "", 0), h.Sum)
		fmt.Fprintf(bw, "%s_count%s %d\n", h.Name, promLabels(h.Labels, "", 0), h.Count)
	}
	return bw.err
}

// helpIndex maps metric name to help text for rendering.
func (r *Registry) helpIndex() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := make(map[string]string, len(r.entries))
	for _, e := range r.entries {
		idx[e.name] = e.help
	}
	return idx
}

func writePreamble(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// promLabels renders a label set, optionally appending an `le` bound, as
// `{k="v",le="0.005"}`; empty input renders as "".
func promLabels(labels map[string]string, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, k := range sortedKeys(labels) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if leKey != "" {
		if !first {
			b.WriteByte(',')
		}
		if math.IsInf(le, 1) {
			b.WriteString(`le="+Inf"`)
		} else {
			fmt.Fprintf(&b, `le="%g"`, le)
		}
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// errWriter latches the first write error so the render loop stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}

// Handler serves the registry in Prometheus text format; mount it at
// /metrics. Safe on a nil registry (serves an empty body).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// PublishExpvar exposes the registry's live snapshot as one expvar variable
// (rendered as JSON under /debug/vars). Publishing an already-published
// name is a no-op rather than the expvar panic, so repeated construction in
// tests is safe. Safe on a nil registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// MarshalJSON renders the live snapshot; lets a *Registry be dropped
// directly into JSON payloads.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}
