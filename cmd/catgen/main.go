// Command catgen generates synthetic news-on-demand catalogs as JSON files
// that qosnegd -catalog and the experiment harness can load: a configurable
// number of articles, variant quality ladders, server placement and
// replication factor (Section 2: copies of the same file are variants too).
//
// Usage:
//
//	catgen -articles 20 -servers 3 -replicate 2 -out catalog.json
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"qosneg/internal/media"
	"qosneg/internal/qos"
	"qosneg/internal/registry"
	"qosneg/internal/sim"
)

func main() {
	articles := flag.Int("articles", 10, "number of articles")
	servers := flag.Int("servers", 3, "number of servers (server-1..N)")
	replicate := flag.Int("replicate", 1, "copies per variant (placed on distinct servers)")
	seed := flag.Int64("seed", 1996, "random seed for durations and quality ladders")
	out := flag.String("out", "catalog.json", "output file")
	flag.Parse()

	var serverIDs []media.ServerID
	for i := 1; i <= *servers; i++ {
		serverIDs = append(serverIDs, media.ServerID(fmt.Sprintf("server-%d", i)))
	}
	rng := sim.NewRand(*seed)
	reg := registry.New()
	for i := 1; i <= *articles; i++ {
		duration := time.Duration(60+rng.Intn(240)) * time.Second
		spec := media.NewsArticleSpec{
			ID:       media.DocumentID(fmt.Sprintf("news-%d", i)),
			Title:    fmt.Sprintf("Synthetic article %d", i),
			Duration: duration,
			Servers:  serverIDs,
			VideoQualities: []qos.VideoQoS{
				{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
				{Color: qos.Color, FrameRate: 15, Resolution: qos.TVResolution},
				{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution},
			},
			AudioQualities: []qos.AudioQoS{
				{Grade: qos.CDQuality, Language: qos.English},
				{Grade: qos.TelephoneQuality, Language: qos.English},
			},
			Languages:    []qos.Language{qos.English, qos.French},
			CopyrightFee: int64(100 + rng.Intn(900)),
		}
		if rng.Intn(3) == 0 {
			spec.WithImage = true
		}
		doc := media.BuildNewsArticle(spec)
		doc = media.Replicate(doc, serverIDs, *replicate)
		if err := reg.Add(doc); err != nil {
			log.Fatalf("catgen: %v", err)
		}
	}
	if err := reg.SaveFile(*out); err != nil {
		log.Fatalf("catgen: %v", err)
	}
	fmt.Printf("wrote %d articles (%d servers, replication %d) to %s\n",
		*articles, *servers, *replicate, *out)
}
