// Command profiletool reproduces the QoS GUI of the paper's Section 8
// (Figures 3–7) as deterministic text windows, and can drive the complete
// window flow — main window → negotiation → information window →
// confirmation — against an in-process news-on-demand system.
//
// Usage:
//
//	profiletool -render all         # print every window (Figures 3–7)
//	profiletool -render main        # one window: main|components|video|audio|cost|info
//	profiletool -flow               # run the full negotiation flow and print the transcript
//	profiletool -flow -profile economy
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"qosneg"
	"qosneg/internal/client"
	"qosneg/internal/cost"
	"qosneg/internal/profile"
	"qosneg/internal/profilemgr"
	"qosneg/internal/qos"
)

func main() {
	render := flag.String("render", "", "window(s) to render: main|components|video|audio|cost|time|importance|info|all")
	flow := flag.Bool("flow", false, "drive the full window flow against an in-process system")
	profileName := flag.String("profile", "tv-quality", "profile to use for -flow")
	flag.Parse()

	store := profile.NewStore()
	for _, p := range profile.DefaultProfiles() {
		if err := store.Save(p); err != nil {
			log.Fatalf("profiletool: %v", err)
		}
	}

	switch {
	case *render != "":
		renderWindows(store, *render)
	case *flow:
		runFlow(store, *profileName)
	default:
		fmt.Fprintln(os.Stderr, "usage: profiletool -render all | -flow [-profile name]")
		os.Exit(2)
	}
}

func renderWindows(store *profile.Store, which string) {
	u, err := store.Get("tv-quality")
	if err != nil {
		log.Fatalf("profiletool: %v", err)
	}
	offerVideo := &qos.VideoQoS{Color: qos.Grey, FrameRate: 20, Resolution: qos.TVResolution}
	windows := map[string]func() string{
		"main": func() string { return profilemgr.RenderMain(store, "tv-quality") },
		"components": func() string {
			return profilemgr.RenderComponents(u, map[string]bool{"video": true})
		},
		"video":      func() string { return profilemgr.RenderVideoProfile(u, offerVideo) },
		"audio":      func() string { return profilemgr.RenderAudioProfile(u, nil) },
		"cost":       func() string { return profilemgr.RenderCostProfile(u, cost.DollarsFloat(4.5)) },
		"time":       func() string { return profilemgr.RenderTimeProfile(u) },
		"importance": func() string { return profilemgr.RenderImportanceProfile(u) },
		"info": func() string {
			offer := profile.MMProfile{
				Video: offerVideo,
				Audio: u.Desired.Audio,
				Cost:  profile.CostProfile{MaxCost: cost.DollarsFloat(4.5)},
			}
			return profilemgr.RenderInformation(profilemgr.InfoResult{
				Status: "FAILEDWITHOFFER", Offer: &offer,
				Cost: cost.DollarsFloat(4.5), ChoicePeriod: "30s",
			})
		},
	}
	order := []string{"main", "components", "video", "audio", "cost", "time", "importance", "info"}
	if which == "all" {
		for _, name := range order {
			fmt.Println(windows[name]())
		}
		return
	}
	w, ok := windows[which]
	if !ok {
		log.Fatalf("profiletool: unknown window %q", which)
	}
	fmt.Println(w())
}

func runFlow(store *profile.Store, profileName string) {
	sys, err := qosneg.New(qosneg.WithClients(1), qosneg.WithServers(2))
	if err != nil {
		log.Fatalf("profiletool: %v", err)
	}
	doc, err := sys.AddNewsArticle("news-1", "Election night", 2*time.Minute)
	if err != nil {
		log.Fatalf("profiletool: %v", err)
	}

	negotiate := func(u profile.UserProfile) (profilemgr.Outcome, error) {
		res, err := sys.NegotiateWith(context.Background(), mustClient(sys), doc.ID, u)
		if err != nil {
			return profilemgr.Outcome{}, err
		}
		out := profilemgr.Outcome{
			Status: res.Status.String(),
			Offer:  res.Offer,
			Reason: res.Reason,
		}
		for _, v := range res.Violations {
			out.Violations = append(out.Violations, v.String())
		}
		if res.Session != nil {
			id := res.Session.ID
			out.Cost = res.Session.Cost()
			out.ChoicePeriod = res.Session.ChoicePeriod
			out.Confirm = func() error { return sys.Manager.Confirm(id) }
			out.Reject = func() error { return sys.Manager.Reject(id) }
		}
		return out, nil
	}

	f := profilemgr.NewFlow(store, negotiate)
	if err := f.Select(profileName); err != nil {
		log.Fatalf("profiletool: %v", err)
	}
	if err := f.OK(); err != nil {
		log.Fatalf("profiletool: negotiation: %v", err)
	}
	if err := f.Accept(); err != nil {
		log.Fatalf("profiletool: accept: %v", err)
	}
	for _, window := range f.Transcript {
		fmt.Println(window)
	}
	fmt.Printf("flow finished in state %q\n", f.State())
}

func mustClient(sys *qosneg.System) client.Machine {
	m, err := sys.Client("client-1")
	if err != nil {
		log.Fatalf("profiletool: %v", err)
	}
	return m
}
