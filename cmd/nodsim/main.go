// Command nodsim runs the reproduction's experiments: every worked example,
// status scenario, adaptation walk-through and synthetic study of
// EXPERIMENTS.md.
//
// Usage:
//
//	nodsim -exp E3        # one experiment
//	nodsim -exp all       # everything
//	nodsim -list          # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"qosneg/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E12, F1, F2) or \"all\"")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-60s [%s]\n", e.ID, e.Title, e.Paper)
		}
		return
	}
	if err := experiments.Run(*exp, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nodsim:", err)
		os.Exit(1)
	}
}
