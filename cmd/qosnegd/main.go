// Command qosnegd is the negotiation daemon: it assembles the
// news-on-demand substrate (registry, CMFS servers, network, QoS manager),
// loads or synthesizes a document catalog, and serves the negotiation wire
// protocol on a TCP address. qosctl is the matching client.
//
// Usage:
//
//	qosnegd -addr :7000 -servers 3 -clients 4
//	qosnegd -addr :7000 -catalog catalog.json
//	qosnegd -addr :7000 -debug-addr 127.0.0.1:7070
//
// With -debug-addr the daemon also serves an observability surface over
// HTTP: /metrics (Prometheus text format), /debug/vars (expvar),
// /debug/trace (the most recent negotiation spans) and /debug/pprof/.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qosneg"
	"qosneg/internal/admission"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/faults"
	"qosneg/internal/media"
	"qosneg/internal/policy"
	"qosneg/internal/protocol"
	"qosneg/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7000", "TCP listen address")
	servers := flag.Int("servers", 2, "number of CMFS servers")
	clients := flag.Int("clients", 4, "number of provisioned client attachment points")
	shards := flag.Int("shards", 0, "manager shards behind consistent-hash session routing (0 runs the classic single manager)")
	catalog := flag.String("catalog", "", "JSON document catalog to load (default: synthesize articles)")
	tariff := flag.String("pricing", "", "JSON tariff to load (default: built-in cost tables)")
	verbose := flag.Bool("verbose", false, "log every negotiation decision (the QoS manager's trace)")
	debugAddr := flag.String("debug-addr", "", "HTTP address for /metrics, /debug/vars, /debug/trace and /debug/pprof (empty disables)")
	codec := flag.String("codec", "auto", "wire codecs offered in the handshake: auto (binary with JSON fallback), binary or json; legacy clients always get JSON")
	maxStreams := flag.Int("max-streams", 0, "concurrent streams per multiplexed connection (0 selects the protocol default)")
	traceDepth := flag.Int("trace-depth", 256, "negotiation spans retained for /debug/trace")
	articles := flag.Int("articles", 5, "synthetic articles to create when no catalog is given")
	offerCache := flag.Int("offer-cache", 0, "candidate-set cache entries (0 selects the default size, negative disables caching)")
	healthThreshold := flag.Int("health-threshold", 3, "consecutive commit failures that quarantine a server (0 disables the breaker)")
	healthCooldown := flag.Duration("health-cooldown", core.DefaultCooldown, "quarantine period after the breaker trips")
	retryAfter := flag.Duration("retry-after", core.DefaultRetryAfter, "retry hint attached to FAILEDTRYLATER results")
	faultSeed := flag.Int64("fault-seed", 0, "seed for the deterministic fault injector (0 disables injection unless another -fault-* flag is set)")
	faultCrash := flag.String("fault-crash", "", "comma-separated server ids to crash at startup (e.g. server-1)")
	faultReserve := flag.Float64("fault-reserve-failure", 0, "probability an injected Reserve fails")
	faultConnect := flag.Float64("fault-connect-failure", 0, "probability an injected Connect fails")
	faultLatency := flag.Duration("fault-latency", 0, "injected latency per Reserve/Connect")
	admit := flag.Bool("admission", false, "enable SLO-driven admission control: overloaded negotiations are shed with FAILEDTRYLATER and a load-derived retry hint")
	sloP99 := flag.Duration("slo-p99", admission.DefaultSLO, "negotiation-latency p99 target the admission controller defends (with -admission)")
	policyName := flag.String("policy", "", "selection/adaptation policy ordering commitment attempts among equally-ranked offers: static (the paper's fixed tie-break, the default) or bandit (online contextual bandit that learns which servers commit reliably)")
	policySeed := flag.Int64("policy-seed", 1, "deterministic seed for the bandit policy's exploration (with -policy bandit)")
	flag.Parse()

	opts := core.DefaultOptions()
	opts.OfferCache = *offerCache
	opts.Health = core.HealthPolicy{
		FailureThreshold: *healthThreshold,
		Cooldown:         *healthCooldown,
		RetryAfter:       *retryAfter,
	}
	if *verbose {
		opts.Trace = func(e core.TraceEvent) {
			log.Printf("negotiate: %-14s %-24s %s", e.Step, e.Offer, e.Detail)
		}
	}
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(*traceDepth)
	var tracer telemetry.Tracer = ring
	if *verbose {
		tracer = telemetry.Multi(ring, telemetry.LogTracer(log.Printf))
	}
	options := []qosneg.Option{
		qosneg.WithClients(*clients),
		qosneg.WithServers(*servers),
		qosneg.WithOptions(opts),
		qosneg.WithMetrics(reg),
		qosneg.WithTracer(tracer),
	}
	if *shards > 0 {
		options = append(options, qosneg.WithShards(*shards))
	}
	switch *policyName {
	case "", "static":
		// The fixed tie-break; installing policy.Static would be equivalent.
	case "bandit":
		cfg := policy.DefaultConfig()
		cfg.Seed = *policySeed
		b := policy.NewBandit(cfg)
		options = append(options,
			qosneg.WithSelectionPolicy(b), qosneg.WithAdaptationPolicy(b))
		log.Printf("bandit selection policy armed (seed %d)", *policySeed)
	default:
		log.Fatalf("qosnegd: unknown -policy %q (want static or bandit)", *policyName)
	}
	var ctrl *admission.Controller
	if *admit {
		ctrl = admission.New(admission.Config{SLO: *sloP99})
		options = append(options, qosneg.WithAdmission(ctrl))
		log.Printf("admission control armed (p99 SLO %s)", *sloP99)
	}
	var inj *faults.Injector
	if *faultSeed != 0 || *faultCrash != "" || *faultReserve > 0 || *faultConnect > 0 || *faultLatency > 0 {
		seed := *faultSeed
		if seed == 0 {
			seed = 1
		}
		inj = faults.New(seed)
		options = append(options, qosneg.WithFaultInjector(inj))
	}
	if *tariff != "" {
		p, err := cost.LoadPricing(*tariff)
		if err != nil {
			log.Fatalf("qosnegd: loading tariff: %v", err)
		}
		options = append(options, qosneg.WithPricing(p))
		log.Printf("loaded tariff from %s", *tariff)
	}
	sys, err := qosneg.New(options...)
	if err != nil {
		log.Fatalf("qosnegd: %v", err)
	}
	if inj != nil {
		if *faultReserve > 0 {
			inj.SetReserveFailure(*faultReserve)
		}
		if *faultConnect > 0 {
			inj.SetConnectFailure(*faultConnect)
		}
		if *faultLatency > 0 {
			inj.SetLatency(*faultLatency)
		}
		for _, id := range strings.Split(*faultCrash, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if !inj.Crash(media.ServerID(id)) {
				log.Fatalf("qosnegd: -fault-crash: unknown server %q", id)
			}
			log.Printf("fault injector: crashed %s at startup", id)
		}
		log.Printf("fault injector armed (reserve-fail %.2f, connect-fail %.2f, latency %s)",
			*faultReserve, *faultConnect, *faultLatency)
	}
	if *catalog != "" {
		if err := sys.Registry.LoadFile(*catalog); err != nil {
			log.Fatalf("qosnegd: loading catalog: %v", err)
		}
		log.Printf("loaded %d documents from %s", sys.Registry.Len(), *catalog)
	} else {
		for i := 1; i <= *articles; i++ {
			id := media.DocumentID(fmt.Sprintf("news-%d", i))
			title := fmt.Sprintf("Synthetic article %d", i)
			if _, err := sys.AddNewsArticle(id, title, 2*time.Minute); err != nil {
				log.Fatalf("qosnegd: %v", err)
			}
		}
		log.Printf("synthesized %d articles", *articles)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("qosnegd: %v", err)
	}
	wire := protocol.WireOptions{MaxStreams: *maxStreams}
	switch *codec {
	case "auto":
		// Zero codec list: binary preferred, JSON fallback.
	case "binary":
		wire.Codecs = []string{protocol.CodecBinary}
	case "json":
		wire.Codecs = []string{protocol.CodecJSON}
	default:
		log.Fatalf("qosnegd: unknown -codec %q (want auto, binary or json)", *codec)
	}
	srv := protocol.NewServer(sys.Manager, sys.Registry,
		protocol.WithServerWire(wire), protocol.WithServerAdmission(ctrl))
	srv.Instrument(reg)
	playout := protocol.AttachPlayout(srv, sys.Manager, 100*time.Millisecond)

	if *debugAddr != "" {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("qosnegd: debug listener: %v", err)
		}
		reg.PublishExpvar("qosneg")
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, e := range ring.Events() {
				fmt.Fprintln(w, e.String())
			}
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.Serve(dl, mux); err != nil && !strings.Contains(err.Error(), "use of closed network connection") {
				log.Printf("qosnegd: debug server: %v", err)
			}
		}()
		log.Printf("debug surface on http://%s (/metrics, /debug/vars, /debug/trace, /debug/pprof/)", dl.Addr())
	}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, drain handlers
	// and playout goroutines, report final stats.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Printf("qosnegd: shutting down")
		l.Close()
		srv.Close()
		playout.Stop()
		st := sys.Manager.Stats()
		log.Printf("qosnegd: served %d requests (%d succeeded, %d with degraded offer)",
			st.Requests, st.Succeeded, st.FailedWithOffer)
		os.Exit(0)
	}()

	if sys.Fleet != nil {
		log.Printf("sharded manager fleet: %d shards behind consistent-hash routing", sys.Fleet.Shards())
	}
	log.Printf("qosnegd listening on %s (%d servers, %d client slots, real-time playout on)",
		l.Addr(), *servers, *clients)
	if err := srv.Serve(l); err != nil {
		log.Fatalf("qosnegd: %v", err)
	}
}
