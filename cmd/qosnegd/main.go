// Command qosnegd is the negotiation daemon: it assembles the
// news-on-demand substrate (registry, CMFS servers, network, QoS manager),
// loads or synthesizes a document catalog, and serves the negotiation wire
// protocol on a TCP address. qosctl is the matching client.
//
// Usage:
//
//	qosnegd -addr :7000 -servers 3 -clients 4
//	qosnegd -addr :7000 -catalog catalog.json
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qosneg"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/protocol"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7000", "TCP listen address")
	servers := flag.Int("servers", 2, "number of CMFS servers")
	clients := flag.Int("clients", 4, "number of provisioned client attachment points")
	catalog := flag.String("catalog", "", "JSON document catalog to load (default: synthesize articles)")
	tariff := flag.String("pricing", "", "JSON tariff to load (default: built-in cost tables)")
	verbose := flag.Bool("verbose", false, "log every negotiation decision (the QoS manager's trace)")
	articles := flag.Int("articles", 5, "synthetic articles to create when no catalog is given")
	flag.Parse()

	options := []qosneg.Option{qosneg.WithClients(*clients), qosneg.WithServers(*servers)}
	if *verbose {
		opts := core.DefaultOptions()
		opts.Trace = func(e core.TraceEvent) {
			log.Printf("negotiate: %-14s %-24s %s", e.Step, e.Offer, e.Detail)
		}
		options = append(options, qosneg.WithOptions(opts))
	}
	if *tariff != "" {
		p, err := cost.LoadPricing(*tariff)
		if err != nil {
			log.Fatalf("qosnegd: loading tariff: %v", err)
		}
		options = append(options, qosneg.WithPricing(p))
		log.Printf("loaded tariff from %s", *tariff)
	}
	sys, err := qosneg.New(options...)
	if err != nil {
		log.Fatalf("qosnegd: %v", err)
	}
	if *catalog != "" {
		if err := sys.Registry.LoadFile(*catalog); err != nil {
			log.Fatalf("qosnegd: loading catalog: %v", err)
		}
		log.Printf("loaded %d documents from %s", sys.Registry.Len(), *catalog)
	} else {
		for i := 1; i <= *articles; i++ {
			id := media.DocumentID(fmt.Sprintf("news-%d", i))
			title := fmt.Sprintf("Synthetic article %d", i)
			if _, err := sys.AddNewsArticle(id, title, 2*time.Minute); err != nil {
				log.Fatalf("qosnegd: %v", err)
			}
		}
		log.Printf("synthesized %d articles", *articles)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("qosnegd: %v", err)
	}
	srv := protocol.NewServer(sys.Manager, sys.Registry)
	playout := protocol.AttachPlayout(srv, sys.Manager, 100*time.Millisecond)

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, drain handlers
	// and playout goroutines, report final stats.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Printf("qosnegd: shutting down")
		l.Close()
		srv.Close()
		playout.Stop()
		st := sys.Manager.Stats()
		log.Printf("qosnegd: served %d requests (%d succeeded, %d with degraded offer)",
			st.Requests, st.Succeeded, st.FailedWithOffer)
		os.Exit(0)
	}()

	log.Printf("qosnegd listening on %s (%d servers, %d client slots, real-time playout on)",
		l.Addr(), *servers, *clients)
	if err := srv.Serve(l); err != nil {
		log.Fatalf("qosnegd: %v", err)
	}
}
