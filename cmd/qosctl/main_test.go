package main

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"qosneg"
	"qosneg/internal/protocol"
	"qosneg/internal/telemetry"
)

// startDaemon serves an in-process qosnegd-shaped system on loopback and
// returns its address. With instrument, the whole stack carries a shared
// telemetry registry, as the real daemon does.
func startDaemon(t *testing.T, instrument bool) string {
	t.Helper()
	options := []qosneg.Option{qosneg.WithClients(1), qosneg.WithServers(2)}
	var reg *telemetry.Registry
	if instrument {
		reg = telemetry.NewRegistry()
		options = append(options,
			qosneg.WithMetrics(reg),
			qosneg.WithTracer(telemetry.NewRing(64)))
	}
	sys, err := qosneg.New(options...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddNewsArticle("news-1", "Election night", 90*time.Second); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := protocol.NewServer(sys.Manager, sys.Registry)
	srv.Instrument(reg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	t.Cleanup(func() {
		l.Close()
		srv.Close()
		<-done
	})
	return l.Addr().String()
}

// ctl runs one qosctl invocation against the daemon and returns its output.
func ctl(t *testing.T, addr string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(append([]string{"-addr", addr}, args...), &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestQosctlCatalogAndNegotiation(t *testing.T) {
	addr := startDaemon(t, true)

	for _, tc := range []struct {
		name string
		args []string
		code int
		want []string
	}{
		{
			name: "list",
			args: []string{"list"},
			want: []string{"news-1", "Election night", "components"},
		},
		{
			name: "negotiate-reject",
			args: []string{"-doc", "news-1", "negotiate"},
			want: []string{"status: SUCCEEDED", "offer video:", "reserved; cost",
				"rejected: resources released"},
		},
		{
			name: "negotiate-confirm",
			args: []string{"-doc", "news-1", "-confirm", "negotiate"},
			want: []string{"status: SUCCEEDED", "confirmed: delivery started"},
		},
		{
			name: "sessions",
			args: []string{"sessions"},
			want: []string{"news-1"},
		},
		{
			name: "session",
			args: []string{"-id", "2", "session"},
			want: []string{"session 2:"},
		},
		{
			name: "invoice",
			args: []string{"-id", "2", "invoice"},
			want: []string{"TOTAL"},
		},
		{
			name: "servers",
			args: []string{"servers"},
			want: []string{"server-1", "healthy", "utilization"},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := ctl(t, addr, tc.args...)
			if code != tc.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.code, stderr)
			}
			for _, w := range tc.want {
				if !strings.Contains(stdout, w) {
					t.Errorf("output missing %q:\n%s", w, stdout)
				}
			}
		})
	}
}

// TestQosctlJSONCodecFlow pins the legacy serialized codec end to end: a
// -codec json client running the classic negotiate → confirm → invoice
// flow against the new daemon must behave exactly as the pre-multiplexing
// qosctl did.
func TestQosctlJSONCodecFlow(t *testing.T) {
	addr := startDaemon(t, true)
	stdout, stderr, code := ctl(t, addr, "-codec", "json", "-doc", "news-1", "-confirm", "negotiate")
	if code != 0 {
		t.Fatalf("negotiate: exit %d (stderr: %s)", code, stderr)
	}
	for _, w := range []string{"status: SUCCEEDED", "confirmed: delivery started"} {
		if !strings.Contains(stdout, w) {
			t.Errorf("output missing %q:\n%s", w, stdout)
		}
	}
	stdout, stderr, code = ctl(t, addr, "-codec", "json", "-id", "1", "invoice")
	if code != 0 {
		t.Fatalf("invoice: exit %d (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "TOTAL") {
		t.Errorf("invoice output missing TOTAL:\n%s", stdout)
	}
}

// TestQosctlBatch drives the batch subcommand: several documents in one
// round trip, per-item statuses, and a non-zero exit when an item names an
// unknown document.
func TestQosctlBatch(t *testing.T) {
	addr := startDaemon(t, true)
	stdout, stderr, code := ctl(t, addr, "-docs", "news-1,news-1", "batch")
	if code != 0 {
		t.Fatalf("batch: exit %d (stderr: %s)", code, stderr)
	}
	if got := strings.Count(stdout, "status: SUCCEEDED"); got != 2 {
		t.Errorf("want 2 successful items, got %d:\n%s", got, stdout)
	}
	if !strings.Contains(stdout, "rejected") {
		t.Errorf("unconfirmed batch items should be rejected:\n%s", stdout)
	}

	stdout, stderr, code = ctl(t, addr, "-docs", "news-1,ghost", "batch")
	if code != 1 {
		t.Fatalf("batch with unknown doc: exit %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "ghost") || !strings.Contains(stdout, "error") {
		t.Errorf("per-item report should name the failing document:\n%s", stdout)
	}
	if !strings.Contains(stdout, "status: SUCCEEDED") {
		t.Errorf("one failing item must not fail its siblings:\n%s", stdout)
	}
}

func TestQosctlStats(t *testing.T) {
	addr := startDaemon(t, true)
	if stdout, stderr, code := ctl(t, addr, "-doc", "news-1", "negotiate"); code != 0 {
		t.Fatalf("negotiate: exit %d\n%s%s", code, stdout, stderr)
	}

	stdout, stderr, code := ctl(t, addr, "stats")
	if code != 0 {
		t.Fatalf("stats: exit %d (stderr: %s)", code, stderr)
	}
	for _, w := range []string{
		"requests 1: SUCCEEDED 1",
		"negotiation latency: p50",
		"step latencies:",
		"local-negotiation",
		"commitment",
		"servers:",
		"server-1",
	} {
		if !strings.Contains(stdout, w) {
			t.Errorf("stats output missing %q:\n%s", w, stdout)
		}
	}
}

func TestQosctlStatsUninstrumented(t *testing.T) {
	addr := startDaemon(t, false)
	stdout, stderr, code := ctl(t, addr, "stats")
	if code != 0 {
		t.Fatalf("stats: exit %d (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "daemon not instrumented") {
		t.Errorf("stats against an uninstrumented daemon should say so:\n%s", stdout)
	}
}

func TestQosctlUsageErrors(t *testing.T) {
	addr := startDaemon(t, false)
	for _, tc := range []struct {
		name string
		args []string
		code int
		want string
	}{
		{name: "no-command", args: nil, code: 2, want: "usage:"},
		{name: "unknown-command", args: []string{"frobnicate"}, code: 2, want: "unknown command"},
		{name: "negotiate-without-doc", args: []string{"negotiate"}, code: 1, want: "negotiate needs -doc"},
		{name: "bad-session", args: []string{"-id", "9999", "session"}, code: 1, want: "qosctl:"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := ctl(t, addr, tc.args...)
			if code != tc.code {
				t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, tc.code, stdout, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
		})
	}
}
