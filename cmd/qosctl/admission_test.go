package main

import (
	"net"
	"strings"
	"testing"
	"time"

	"qosneg"
	"qosneg/internal/admission"
	"qosneg/internal/core"
	"qosneg/internal/protocol"
	"qosneg/internal/telemetry"
)

// pinController saturates a one-slot controller for the test's lifetime.
func pinController(t *testing.T) *admission.Controller {
	t.Helper()
	ctrl := admission.New(admission.Config{MaxInFlight: 1, MinInFlight: 1})
	rel, _, ok := ctrl.Admit()
	if !ok {
		t.Fatal("could not pin the controller")
	}
	t.Cleanup(rel)
	return ctrl
}

// startShedDaemon serves a system whose QoS manager sheds everything. When
// wireShed is set the protocol server also carries the controller, so sheds
// happen at the wire as typed busy replies; otherwise they surface as
// FAILEDTRYLATER results with the Shed flag.
func startShedDaemon(t *testing.T, wireShed bool) string {
	t.Helper()
	ctrl := pinController(t)
	reg := telemetry.NewRegistry()
	opts := core.DefaultOptions()
	opts.Admission = ctrl
	sys, err := qosneg.New(
		qosneg.WithClients(1), qosneg.WithServers(2),
		qosneg.WithOptions(opts), qosneg.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Instrument(reg)
	if _, err := sys.AddNewsArticle("news-1", "Election night", 90*time.Second); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvOpts := []protocol.ServerOption{}
	if wireShed {
		srvOpts = append(srvOpts, protocol.WithServerAdmission(ctrl))
	}
	srv := protocol.NewServer(sys.Manager, sys.Registry, srvOpts...)
	srv.Instrument(reg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	t.Cleanup(func() {
		l.Close()
		srv.Close()
		<-done
	})
	return l.Addr().String()
}

// TestQosctlRendersShedResult: a manager-level shed renders the Shed
// marker and the RetryAfter hint, on both codecs.
func TestQosctlRendersShedResult(t *testing.T) {
	addr := startShedDaemon(t, false)
	for _, codec := range []string{"auto", "json"} {
		t.Run(codec, func(t *testing.T) {
			stdout, stderr, code := ctl(t, addr, "-codec", codec, "-doc", "news-1", "negotiate")
			if code != 0 {
				t.Fatalf("exit %d (stderr: %s)", code, stderr)
			}
			for _, w := range []string{
				"status: FAILEDTRYLATER",
				"shed: refused by admission control",
				"retry after: ",
			} {
				if !strings.Contains(stdout, w) {
					t.Errorf("output missing %q:\n%s", w, stdout)
				}
			}
		})
	}
}

// TestQosctlRendersBatchShed: shed batch items carry the (shed) marker and
// a retry hint per item.
func TestQosctlRendersBatchShed(t *testing.T) {
	addr := startShedDaemon(t, false)
	for _, codec := range []string{"auto", "json"} {
		t.Run(codec, func(t *testing.T) {
			stdout, stderr, code := ctl(t, addr, "-codec", codec, "-docs", "news-1,news-1", "batch")
			if code != 0 {
				t.Fatalf("exit %d (stderr: %s)", code, stderr)
			}
			if got := strings.Count(stdout, "(shed)"); got != 2 {
				t.Errorf("want 2 shed markers, got %d:\n%s", got, stdout)
			}
			if got := strings.Count(stdout, "(retry after "); got != 2 {
				t.Errorf("want 2 retry hints, got %d:\n%s", got, stdout)
			}
		})
	}
}

// TestQosctlReportsBusyError: a wire-level shed surfaces the typed busy
// error, including the hint, on both codecs.
func TestQosctlReportsBusyError(t *testing.T) {
	addr := startShedDaemon(t, true)
	for _, codec := range []string{"auto", "json"} {
		t.Run(codec, func(t *testing.T) {
			stdout, stderr, code := ctl(t, addr, "-codec", codec, "-doc", "news-1", "negotiate")
			if code != 1 {
				t.Fatalf("exit %d, want 1\nstdout: %s", code, stdout)
			}
			if !strings.Contains(stderr, "server busy") || !strings.Contains(stderr, "retry after") {
				t.Errorf("stderr missing busy diagnosis:\n%s", stderr)
			}
		})
	}
}

// TestQosctlStatsShowsAdmission: after sheds, stats reports both the
// manager's shed count and the controller's gauges.
func TestQosctlStatsShowsAdmission(t *testing.T) {
	addr := startShedDaemon(t, false)
	if _, stderr, code := ctl(t, addr, "-doc", "news-1", "negotiate"); code != 0 {
		t.Fatalf("negotiate: exit %d (stderr: %s)", code, stderr)
	}
	stdout, stderr, code := ctl(t, addr, "stats")
	if code != 0 {
		t.Fatalf("stats: exit %d (stderr: %s)", code, stderr)
	}
	for _, w := range []string{
		"FAILEDTRYLATER 1",
		"admission sheds: 1",
		"admission: ",
		"retry hint",
	} {
		if !strings.Contains(stdout, w) {
			t.Errorf("stats output missing %q:\n%s", w, stdout)
		}
	}
}
