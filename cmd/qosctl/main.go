// Command qosctl talks to a qosnegd daemon: it lists the catalog, runs a
// negotiation with a factory profile, confirms or rejects the reserved
// offer, negotiates a whole playlist in one round trip, inspects sessions,
// and renders the daemon's telemetry.
//
// Usage:
//
//	qosctl -addr 127.0.0.1:7000 list
//	qosctl -addr 127.0.0.1:7000 negotiate -doc news-1 -profile tv-quality [-confirm]
//	qosctl -addr 127.0.0.1:7000 batch -docs news-1,movie-2 -profile tv-quality [-confirm]
//	qosctl -addr 127.0.0.1:7000 renegotiate -id 3 -profile premium [-confirm]
//	qosctl -addr 127.0.0.1:7000 session -id 3
//	qosctl -addr 127.0.0.1:7000 watch -id 3
//	qosctl -addr 127.0.0.1:7000 sessions
//	qosctl -addr 127.0.0.1:7000 invoice -id 3
//	qosctl -addr 127.0.0.1:7000 servers
//	qosctl -addr 127.0.0.1:7000 stats
//	qosctl -addr 127.0.0.1:7000 shards
//
// The -codec flag pins the wire codec: "auto" (default) negotiates the
// multiplexed binary codec and falls back to JSON against older daemons,
// "binary" refuses to fall back, and "json" speaks the legacy protocol
// byte-for-byte.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"qosneg/internal/admission"
	"qosneg/internal/client"
	"qosneg/internal/core"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/profile"
	"qosneg/internal/protocol"
	"qosneg/internal/shard"
	"qosneg/internal/telemetry"
)

const usage = "usage: qosctl [flags] list|negotiate|batch|renegotiate|session|sessions|invoice|servers|watch|stats|shards"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so tests can drive the whole
// CLI in-process against a loopback daemon.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qosctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7000", "daemon address")
	doc := fs.String("doc", "", "document id for negotiate")
	docs := fs.String("docs", "", "comma-separated document ids for batch")
	profileName := fs.String("profile", "tv-quality", "factory profile: tv-quality, premium or economy")
	clientNode := fs.String("client", "client-1", "client attachment point on the daemon's network")
	confirm := fs.Bool("confirm", false, "confirm the offer after a successful negotiation")
	codec := fs.String("codec", "auto", "wire codec: auto, binary or json")
	id := fs.Uint64("id", 0, "session id for the session command")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, usage)
		return 2
	}
	var wire protocol.WireOptions
	switch *codec {
	case "auto":
		// Zero value: offer binary, fall back to JSON.
	case "binary":
		wire.Codecs = []string{protocol.CodecBinary}
	case "json":
		wire.Codecs = []string{protocol.CodecJSON}
	default:
		fmt.Fprintf(stderr, "qosctl: unknown codec %q (want auto, binary or json)\n", *codec)
		return 2
	}
	ctx := context.Background()
	c, err := protocol.Dial(*addr, protocol.WithWire(wire))
	if err != nil {
		fmt.Fprintf(stderr, "qosctl: %v\n", err)
		return 1
	}
	defer c.Close()

	fail := func(err error) int {
		fmt.Fprintf(stderr, "qosctl: %v\n", err)
		return 1
	}

	switch fs.Arg(0) {
	case "list":
		docs, err := c.ListDocuments(ctx, "")
		if err != nil {
			return fail(err)
		}
		for _, d := range docs {
			fmt.Fprintf(stdout, "%-12s %-40s %d components\n", d.ID, d.Title, d.Components)
		}
	case "negotiate":
		if *doc == "" {
			return fail(fmt.Errorf("negotiate needs -doc"))
		}
		u, err := factoryProfile(*profileName)
		if err != nil {
			return fail(err)
		}
		mach := client.Workstation(client.MachineID(*clientNode), network.NodeID(*clientNode))
		res, err := c.Negotiate(ctx, mach, media.DocumentID(*doc), u)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "status: %s\n", res.Status)
		if res.Reason != "" {
			fmt.Fprintf(stdout, "reason: %s\n", res.Reason)
		}
		if res.Shed {
			fmt.Fprintln(stdout, "shed: refused by admission control (overload, not capacity)")
		}
		if res.RetryAfter > 0 {
			fmt.Fprintf(stdout, "retry after: %s\n", res.RetryAfter)
		}
		for _, v := range res.Violations {
			fmt.Fprintf(stdout, "violation: %s\n", v)
		}
		if res.Offer != nil {
			printOffer(stdout, res.Offer)
		}
		if res.Status.Reserved() {
			fmt.Fprintf(stdout, "session %d reserved; cost %s; confirm within %s\n", res.Session, res.Cost, res.ChoicePeriod)
			if *confirm {
				if err := c.Confirm(ctx, res.Session); err != nil {
					return fail(fmt.Errorf("confirm: %w", err))
				}
				fmt.Fprintln(stdout, "confirmed: delivery started")
			} else {
				if err := c.Reject(ctx, res.Session); err != nil {
					return fail(fmt.Errorf("reject: %w", err))
				}
				fmt.Fprintln(stdout, "rejected: resources released (pass -confirm to accept)")
			}
		}
	case "batch":
		if *docs == "" {
			return fail(fmt.Errorf("batch needs -docs (comma-separated document ids)"))
		}
		u, err := factoryProfile(*profileName)
		if err != nil {
			return fail(err)
		}
		mach := client.Workstation(client.MachineID(*clientNode), network.NodeID(*clientNode))
		var items []protocol.BatchItem
		for _, d := range strings.Split(*docs, ",") {
			d = strings.TrimSpace(d)
			if d == "" {
				continue
			}
			items = append(items, protocol.BatchItem{Machine: &mach, Document: media.DocumentID(d), Profile: &u})
		}
		if len(items) == 0 {
			return fail(fmt.Errorf("batch needs -docs (comma-separated document ids)"))
		}
		results, err := c.BatchNegotiate(ctx, items)
		if err != nil {
			return fail(err)
		}
		exit := 0
		for i, res := range results {
			name := items[i].Document
			if res.Err != nil {
				fmt.Fprintf(stdout, "%-12s error: %v\n", name, res.Err)
				exit = 1
				continue
			}
			fmt.Fprintf(stdout, "%-12s status: %s", name, res.Status)
			if res.Shed {
				fmt.Fprint(stdout, " (shed)")
			}
			if res.RetryAfter > 0 {
				fmt.Fprintf(stdout, " (retry after %s)", res.RetryAfter)
			}
			fmt.Fprintln(stdout)
			if !res.Status.Reserved() {
				continue
			}
			if *confirm {
				if err := c.Confirm(ctx, res.Session); err != nil {
					return fail(fmt.Errorf("confirm %s: %w", name, err))
				}
				fmt.Fprintf(stdout, "%-12s session %d confirmed; cost %s\n", name, res.Session, res.Cost)
			} else {
				if err := c.Reject(ctx, res.Session); err != nil {
					return fail(fmt.Errorf("reject %s: %w", name, err))
				}
				fmt.Fprintf(stdout, "%-12s session %d rejected (pass -confirm to accept)\n", name, res.Session)
			}
		}
		return exit
	case "renegotiate":
		if *id == 0 {
			return fail(fmt.Errorf("renegotiate needs -id"))
		}
		u, err := factoryProfile(*profileName)
		if err != nil {
			return fail(err)
		}
		res, err := c.Renegotiate(ctx, core.SessionID(*id), u)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "status: %s\n", res.Status)
		if res.RetryAfter > 0 {
			fmt.Fprintf(stdout, "retry after: %s\n", res.RetryAfter)
		}
		if res.Offer != nil {
			printOffer(stdout, res.Offer)
		}
		if res.Status.Reserved() {
			fmt.Fprintf(stdout, "session %d re-reserved; cost %s; confirm within %s\n", res.Session, res.Cost, res.ChoicePeriod)
			if *confirm {
				if err := c.Confirm(ctx, res.Session); err != nil {
					return fail(fmt.Errorf("confirm: %w", err))
				}
				fmt.Fprintln(stdout, "confirmed: delivery started")
			}
		}
	case "session":
		info, err := c.Session(ctx, core.SessionID(*id))
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "session %d: %s, position %s, %d transition(s), cost %s\n",
			info.Session, info.State, info.Position, info.Transitions, info.Cost)
	case "watch":
		if *id == 0 {
			return fail(fmt.Errorf("watch needs -id"))
		}
		err := c.Watch(ctx, core.SessionID(*id), 250*time.Millisecond, func(i protocol.SessionInfo) {
			fmt.Fprintf(stdout, "session %d: %-9s position %-8s transitions %d\n",
				i.Session, i.State, i.Position, i.Transitions)
		})
		if err != nil {
			return fail(err)
		}
	case "sessions":
		rows, err := c.ListSessions(ctx)
		if err != nil {
			return fail(err)
		}
		for _, r := range rows {
			fmt.Fprintf(stdout, "%4d %-12s %-10s pos %-10s transitions %d cost %s\n",
				r.Session, r.Document, r.State, time.Duration(r.PositionMs)*time.Millisecond, r.Transitions, r.Cost)
		}
	case "invoice":
		if *id == 0 {
			return fail(fmt.Errorf("invoice needs -id"))
		}
		inv, err := c.Invoice(ctx, core.SessionID(*id))
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, inv.String())
	case "servers":
		loads, err := c.ServerLoads(ctx)
		if err != nil {
			return fail(err)
		}
		printServers(stdout, loads)
	case "stats":
		st, err := c.Stats(ctx)
		if err != nil {
			return fail(err)
		}
		snap, err := c.Metrics(ctx)
		if err != nil {
			return fail(err)
		}
		loads, err := c.ServerLoads(ctx)
		if err != nil {
			return fail(err)
		}
		printStats(stdout, st, snap, loads)
	case "shards":
		rows, err := c.ShardStats(ctx)
		if err != nil {
			return fail(err)
		}
		if len(rows) == 0 {
			fmt.Fprintln(stdout, "daemon runs a single (unsharded) manager")
			break
		}
		printShards(stdout, rows)
	default:
		fmt.Fprintf(stderr, "qosctl: unknown command %q\n", fs.Arg(0))
		return 2
	}
	return 0
}

// printStats renders the daemon's counters, the wire-snapshot latency
// quantiles, and the per-server breaker state in one report.
func printStats(w io.Writer, st core.Stats, snap telemetry.Snapshot, loads []core.ServerLoad) {
	fmt.Fprintf(w, "requests %d: SUCCEEDED %d, FAILEDWITHOFFER %d, FAILEDTRYLATER %d, "+
		"FAILEDWITHOUTOFFER %d, FAILEDWITHLOCALOFFER %d; adaptations %d (failed %d)\n",
		st.Requests, st.Succeeded, st.FailedWithOffer, st.FailedTryLater,
		st.FailedWithoutOffer, st.FailedWithLocalOffer, st.Adaptations, st.AdaptationFailures)
	if st.OfferCacheHits+st.OfferCacheMisses > 0 {
		ratio := float64(st.OfferCacheHits) / float64(st.OfferCacheHits+st.OfferCacheMisses)
		fmt.Fprintf(w, "offer cache: %d hits, %d misses (%.0f%% hit rate), %d invalidations, %d entries\n",
			st.OfferCacheHits, st.OfferCacheMisses, 100*ratio, st.OfferCacheInvalidations, st.OfferCacheEntries)
	}
	if st.AdmissionSheds > 0 {
		fmt.Fprintf(w, "admission sheds: %d (FAILEDTRYLATER by overload, included in the counts above)\n",
			st.AdmissionSheds)
	}

	if len(snap.Counters)+len(snap.Histograms) == 0 {
		fmt.Fprintln(w, "telemetry: daemon not instrumented (no metrics snapshot)")
		return
	}
	if h, ok := snap.Find(core.MetricNegotiationTime, ""); ok && h.Count > 0 {
		fmt.Fprintf(w, "negotiation latency: %s (n=%d)\n", quantiles(h), h.Count)
	}
	steps := []telemetry.Step{
		telemetry.StepLocalNegotiation,
		telemetry.StepCompatibilityCheck,
		telemetry.StepClassificationParams,
		telemetry.StepClassification,
		telemetry.StepCommitment,
		telemetry.StepConfirmation,
	}
	header := false
	for _, s := range steps {
		h, ok := snap.Find(core.MetricStepTime, s.String())
		if !ok || h.Count == 0 {
			continue
		}
		if !header {
			fmt.Fprintln(w, "step latencies:")
			header = true
		}
		fmt.Fprintf(w, "  %-22s %s (n=%d)\n", s, quantiles(h), h.Count)
	}
	if v := snap.CounterValue(core.MetricCommitFailures, ""); v > 0 {
		fmt.Fprintf(w, "commit failures: %d (skipped dead servers %d, quarantine trips %d)\n",
			v, snap.CounterValue(core.MetricCommitSkips, ""),
			snap.CounterValue(core.MetricQuarantines, ""))
	}
	if v := snap.CounterValue(core.MetricRevenue, ""); v > 0 {
		fmt.Fprintf(w, "revenue: $%.3f\n", float64(v)/1000)
	}
	admitted := snap.CounterValue(admission.MetricAdmitted, "")
	shed := snap.CounterValue(admission.MetricSheds, "")
	if admitted+shed > 0 {
		limit, _ := gaugeValue(snap, admission.MetricLimit)
		inflight, _ := gaugeValue(snap, admission.MetricInFlight)
		hint, _ := gaugeValue(snap, admission.MetricRetryAfter)
		fmt.Fprintf(w, "admission: %d admitted, %d shed; limit %d, in-flight %d, retry hint %s\n",
			admitted, shed, limit, inflight, time.Duration(hint)*time.Millisecond)
	}
	if v := snap.CounterValue("qosneg_rpc_shed_total", ""); v > 0 {
		fmt.Fprintf(w, "wire sheds: %d (binary %d, json %d)\n", v,
			snap.CounterValue("qosneg_rpc_shed_total", protocol.CodecBinary),
			snap.CounterValue("qosneg_rpc_shed_total", protocol.CodecJSON))
	}
	if len(loads) > 0 {
		fmt.Fprintln(w, "servers:")
		printServers(indent(w), loads)
	}
}

// printShards renders the per-shard fleet view: live sessions, outcome
// counters, update-bus lag and breaker state for each manager shard.
func printShards(w io.Writer, rows []shard.Stat) {
	for _, r := range rows {
		st := r.Stats
		fmt.Fprintf(w, "shard %d: %d live session(s), bus lag %d\n", r.Shard, r.Sessions, r.BusLag)
		fmt.Fprintf(w, "  requests %d: SUCCEEDED %d, FAILEDWITHOFFER %d, FAILEDTRYLATER %d, "+
			"FAILEDWITHOUTOFFER %d, FAILEDWITHLOCALOFFER %d; adaptations %d (failed %d)\n",
			st.Requests, st.Succeeded, st.FailedWithOffer, st.FailedTryLater,
			st.FailedWithoutOffer, st.FailedWithLocalOffer, st.Adaptations, st.AdaptationFailures)
		if st.Quarantines > 0 || st.AdmissionSheds > 0 {
			fmt.Fprintf(w, "  quarantines %d, admission sheds %d\n", st.Quarantines, st.AdmissionSheds)
		}
		for _, b := range r.Breakers {
			health := "recovered"
			if b.Quarantined {
				health = fmt.Sprintf("QUARANTINED %s", time.Duration(b.QuarantineMs)*time.Millisecond)
			} else if b.ConsecutiveFailures > 0 {
				health = fmt.Sprintf("%d consecutive failure(s)", b.ConsecutiveFailures)
			}
			fmt.Fprintf(w, "  breaker %-12s %-24s trips %d\n", b.Server, health, b.Quarantines)
		}
	}
}

// gaugeValue finds an unlabeled gauge in the snapshot by name.
func gaugeValue(snap telemetry.Snapshot, name string) (int64, bool) {
	for _, g := range snap.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

func quantiles(h telemetry.HistogramPoint) string {
	return fmt.Sprintf("p50 %s  p90 %s  p99 %s",
		round(h.Quantile(0.50)), round(h.Quantile(0.90)), round(h.Quantile(0.99)))
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(time.Microsecond)
	}
}

func printServers(w io.Writer, loads []core.ServerLoad) {
	for _, l := range loads {
		health := "healthy"
		if l.Quarantined {
			health = fmt.Sprintf("QUARANTINED %s", time.Duration(l.QuarantineMs)*time.Millisecond)
		} else if l.ConsecutiveFailures > 0 {
			health = fmt.Sprintf("%d consecutive failure(s)", l.ConsecutiveFailures)
		}
		fmt.Fprintf(w, "%-12s %2d streams  utilization %.2f  %-24s down %d reserve-fail %d connect-fail %d\n",
			l.ID, l.ActiveStreams, l.Utilization, health, l.DownFailures, l.ReserveFailures, l.ConnectFailures)
	}
}

// indent returns a writer that prefixes every write with two spaces; the
// server table is reused verbatim by both "servers" and "stats".
func indent(w io.Writer) io.Writer { return indentWriter{w} }

type indentWriter struct{ w io.Writer }

func (iw indentWriter) Write(p []byte) (int, error) {
	if _, err := iw.w.Write(append([]byte("  "), p...)); err != nil {
		return 0, err
	}
	return len(p), nil
}

func factoryProfile(name string) (profile.UserProfile, error) {
	for _, p := range profile.DefaultProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return profile.UserProfile{}, fmt.Errorf("unknown factory profile %q", name)
}

func printOffer(w io.Writer, o *profile.MMProfile) {
	if o.Video != nil {
		fmt.Fprintf(w, "offer video: %s\n", o.Video)
	}
	if o.Audio != nil {
		fmt.Fprintf(w, "offer audio: %s\n", o.Audio)
	}
	if o.Image != nil {
		fmt.Fprintf(w, "offer image: %s\n", o.Image)
	}
	if o.Text != nil {
		fmt.Fprintf(w, "offer text:  %s\n", o.Text)
	}
}
