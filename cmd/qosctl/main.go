// Command qosctl talks to a qosnegd daemon: it lists the catalog, runs a
// negotiation with a factory profile, confirms or rejects the reserved
// offer, and inspects sessions.
//
// Usage:
//
//	qosctl -addr 127.0.0.1:7000 list
//	qosctl -addr 127.0.0.1:7000 negotiate -doc news-1 -profile tv-quality [-confirm]
//	qosctl -addr 127.0.0.1:7000 renegotiate -id 3 -profile premium [-confirm]
//	qosctl -addr 127.0.0.1:7000 session -id 3
//	qosctl -addr 127.0.0.1:7000 watch -id 3
//	qosctl -addr 127.0.0.1:7000 sessions
//	qosctl -addr 127.0.0.1:7000 invoice -id 3
//	qosctl -addr 127.0.0.1:7000 servers
//	qosctl -addr 127.0.0.1:7000 stats
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"qosneg/internal/client"
	"qosneg/internal/core"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/profile"
	"qosneg/internal/protocol"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7000", "daemon address")
	doc := flag.String("doc", "", "document id for negotiate")
	profileName := flag.String("profile", "tv-quality", "factory profile: tv-quality, premium or economy")
	clientNode := flag.String("client", "client-1", "client attachment point on the daemon's network")
	confirm := flag.Bool("confirm", false, "confirm the offer after a successful negotiation")
	id := flag.Uint64("id", 0, "session id for the session command")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qosctl [flags] list|negotiate|renegotiate|session|sessions|invoice|servers|watch|stats")
		os.Exit(2)
	}
	c, err := protocol.Dial(*addr)
	if err != nil {
		log.Fatalf("qosctl: %v", err)
	}
	defer c.Close()

	switch flag.Arg(0) {
	case "list":
		docs, err := c.ListDocuments("")
		if err != nil {
			log.Fatalf("qosctl: %v", err)
		}
		for _, d := range docs {
			fmt.Printf("%-12s %-40s %d components\n", d.ID, d.Title, d.Components)
		}
	case "negotiate":
		if *doc == "" {
			log.Fatal("qosctl: negotiate needs -doc")
		}
		u, err := factoryProfile(*profileName)
		if err != nil {
			log.Fatalf("qosctl: %v", err)
		}
		mach := client.Workstation(client.MachineID(*clientNode), network.NodeID(*clientNode))
		res, err := c.Negotiate(mach, media.DocumentID(*doc), u)
		if err != nil {
			log.Fatalf("qosctl: %v", err)
		}
		fmt.Printf("status: %s\n", res.Status)
		if res.Reason != "" {
			fmt.Printf("reason: %s\n", res.Reason)
		}
		if res.RetryAfter > 0 {
			fmt.Printf("retry after: %s\n", res.RetryAfter)
		}
		for _, v := range res.Violations {
			fmt.Printf("violation: %s\n", v)
		}
		if res.Offer != nil {
			printOffer(res.Offer)
		}
		if res.Status.Reserved() {
			fmt.Printf("session %d reserved; cost %s; confirm within %s\n", res.Session, res.Cost, res.ChoicePeriod)
			if *confirm {
				if err := c.Confirm(res.Session); err != nil {
					log.Fatalf("qosctl: confirm: %v", err)
				}
				fmt.Println("confirmed: delivery started")
			} else {
				if err := c.Reject(res.Session); err != nil {
					log.Fatalf("qosctl: reject: %v", err)
				}
				fmt.Println("rejected: resources released (pass -confirm to accept)")
			}
		}
	case "renegotiate":
		if *id == 0 {
			log.Fatal("qosctl: renegotiate needs -id")
		}
		u, err := factoryProfile(*profileName)
		if err != nil {
			log.Fatalf("qosctl: %v", err)
		}
		res, err := c.Renegotiate(core.SessionID(*id), u)
		if err != nil {
			log.Fatalf("qosctl: %v", err)
		}
		fmt.Printf("status: %s\n", res.Status)
		if res.RetryAfter > 0 {
			fmt.Printf("retry after: %s\n", res.RetryAfter)
		}
		if res.Offer != nil {
			printOffer(res.Offer)
		}
		if res.Status.Reserved() {
			fmt.Printf("session %d re-reserved; cost %s; confirm within %s\n", res.Session, res.Cost, res.ChoicePeriod)
			if *confirm {
				if err := c.Confirm(res.Session); err != nil {
					log.Fatalf("qosctl: confirm: %v", err)
				}
				fmt.Println("confirmed: delivery started")
			}
		}
	case "session":
		info, err := c.Session(core.SessionID(*id))
		if err != nil {
			log.Fatalf("qosctl: %v", err)
		}
		fmt.Printf("session %d: %s, position %s, %d transition(s), cost %s\n",
			info.Session, info.State, info.Position, info.Transitions, info.Cost)
	case "watch":
		if *id == 0 {
			log.Fatal("qosctl: watch needs -id")
		}
		err := c.Watch(core.SessionID(*id), 250*time.Millisecond, func(i protocol.SessionInfo) {
			fmt.Printf("session %d: %-9s position %-8s transitions %d\n",
				i.Session, i.State, i.Position, i.Transitions)
		})
		if err != nil {
			log.Fatalf("qosctl: %v", err)
		}
	case "sessions":
		rows, err := c.ListSessions()
		if err != nil {
			log.Fatalf("qosctl: %v", err)
		}
		for _, r := range rows {
			fmt.Printf("%4d %-12s %-10s pos %-10s transitions %d cost %s\n",
				r.Session, r.Document, r.State, time.Duration(r.PositionMs)*time.Millisecond, r.Transitions, r.Cost)
		}
	case "invoice":
		if *id == 0 {
			log.Fatal("qosctl: invoice needs -id")
		}
		inv, err := c.Invoice(core.SessionID(*id))
		if err != nil {
			log.Fatalf("qosctl: %v", err)
		}
		fmt.Print(inv.String())
	case "servers":
		loads, err := c.ServerLoads()
		if err != nil {
			log.Fatalf("qosctl: %v", err)
		}
		for _, l := range loads {
			health := "healthy"
			if l.Quarantined {
				health = fmt.Sprintf("QUARANTINED %s", time.Duration(l.QuarantineMs)*time.Millisecond)
			} else if l.ConsecutiveFailures > 0 {
				health = fmt.Sprintf("%d consecutive failure(s)", l.ConsecutiveFailures)
			}
			fmt.Printf("%-12s %2d streams  utilization %.2f  %-24s down %d reserve-fail %d connect-fail %d\n",
				l.ID, l.ActiveStreams, l.Utilization, health, l.DownFailures, l.ReserveFailures, l.ConnectFailures)
		}
	case "stats":
		st, err := c.Stats()
		if err != nil {
			log.Fatalf("qosctl: %v", err)
		}
		fmt.Printf("requests %d: SUCCEEDED %d, FAILEDWITHOFFER %d, FAILEDTRYLATER %d, "+
			"FAILEDWITHOUTOFFER %d, FAILEDWITHLOCALOFFER %d; adaptations %d (failed %d)\n",
			st.Requests, st.Succeeded, st.FailedWithOffer, st.FailedTryLater,
			st.FailedWithoutOffer, st.FailedWithLocalOffer, st.Adaptations, st.AdaptationFailures)
	default:
		fmt.Fprintf(os.Stderr, "qosctl: unknown command %q\n", flag.Arg(0))
		os.Exit(2)
	}
}

func factoryProfile(name string) (profile.UserProfile, error) {
	for _, p := range profile.DefaultProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return profile.UserProfile{}, fmt.Errorf("unknown factory profile %q", name)
}

func printOffer(o *profile.MMProfile) {
	if o.Video != nil {
		fmt.Printf("offer video: %s\n", o.Video)
	}
	if o.Audio != nil {
		fmt.Printf("offer audio: %s\n", o.Audio)
	}
	if o.Image != nil {
		fmt.Printf("offer image: %s\n", o.Image)
	}
	if o.Text != nil {
		fmt.Printf("offer text:  %s\n", o.Text)
	}
}
