# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench cover check experiments examples fmt vet clean

all: build test

# The full CI gate: vet, build, race-enabled tests and a smoke run of every
# benchmark.
check:
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

# Regenerate every paper artefact (EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/nodsim -exp all

# Run every example program once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/newsondemand
	$(GO) run ./examples/adaptation
	$(GO) run ./examples/protocol
	$(GO) run ./examples/multidomain
	$(GO) run ./examples/booking

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
