# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench bench-compare profile cover check experiments examples fmt vet fuzz stress clean

all: build test

# The full CI gate: gofmt, vet, build, race-enabled tests, and smoke runs of
# every benchmark and fuzz target.
check:
	./scripts/check.sh

# Smoke-run the fuzz targets (also part of `make check`).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzCurveEval$$' -fuzztime 5s ./internal/profile
	$(GO) test -run '^$$' -fuzz '^FuzzServerInput$$' -fuzztime 5s ./internal/protocol
	$(GO) test -run '^$$' -fuzz '^FuzzTableClassify$$' -fuzztime 5s ./internal/cost

# Long concurrency stress on the session lifecycle (the epoch guard and the
# resource ledger), beyond the short gate `make check` runs. Scale the
# per-worker operation count with QOSNEG_STRESS_ITERS.
stress:
	QOSNEG_STRESS_ITERS=$${QOSNEG_STRESS_ITERS:-2000} $(GO) test -race -count=1 -v -run 'TestLifecycleStress|TestChaos' ./internal/core

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Repeated experiment benchmarks; writes BENCH_<date>.json. Use
# `./scripts/bench.sh -smoke` for the 1-iteration CI smoke run.
bench:
	./scripts/bench.sh

# Rerun the suite and diff it against the committed baseline; fails when the
# E6 negotiation benchmarks regress more than 10% on their minimum.
bench-compare:
	./scripts/bench.sh -compare BENCH_BASELINE.json

# CPU and heap profiles of the cached E6 negotiation hot path, written to
# ./profiles/ for `go tool pprof`.
profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench '^BenchmarkE6Negotiate$$' -benchtime 2s \
		-cpuprofile profiles/e6.cpu.pprof -memprofile profiles/e6.mem.pprof \
		-o profiles/e6.test .
	@echo "profile: wrote profiles/e6.cpu.pprof and profiles/e6.mem.pprof"

cover:
	$(GO) test -cover ./...

# Regenerate every paper artefact (EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/nodsim -exp all

# Run every example program once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/newsondemand
	$(GO) run ./examples/adaptation
	$(GO) run ./examples/protocol
	$(GO) run ./examples/multidomain
	$(GO) run ./examples/booking

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
