package qosneg

import (
	"errors"

	"qosneg/internal/core"
	"qosneg/internal/offer"
	"qosneg/internal/profile"
)

// The facade's error contract; see the package comment. Each sentinel
// matches via errors.Is against errors returned anywhere in the public
// surface, including through the System facade and the core.Manager.
var (
	// ErrClientNotFound is returned by System.Client and the negotiation
	// helpers for a client id the system was not assembled with.
	ErrClientNotFound = errors.New("qosneg: unknown client")

	// ErrProfileNotFound is returned for a profile name not in the store.
	ErrProfileNotFound = profile.ErrNotFound

	// ErrSessionNotFound is returned by session operations (Confirm,
	// Reject, Renegotiate, Adapt, Invoice, ...) for an unknown session id.
	ErrSessionNotFound = core.ErrUnknownSession

	// ErrChoicePeriodExpired is returned by session operations when the
	// step 6 choice period elapsed before the user acted; the session was
	// aborted and its resources released.
	ErrChoicePeriodExpired = core.ErrChoicePeriodExpired

	// ErrTooManyOffers is returned by negotiation when the document's
	// variant product exceeds the enumeration bound.
	ErrTooManyOffers = offer.ErrTooManyOffers
)
