//go:build !race

package qosneg

// raceDetectorOn mirrors overload_race_test.go for normal builds.
const raceDetectorOn = false
