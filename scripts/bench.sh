#!/bin/sh
# Benchmark runner.
#
#   scripts/bench.sh -smoke      run every benchmark once (the check.sh gate)
#   scripts/bench.sh [count]     run the root-package experiment benchmarks
#                                `count` times (default 3) and write
#                                BENCH_<date>.json with ns/op, B/op and
#                                allocs/op per run
#   scripts/bench.sh -compare <baseline.json> [count] [maxpct] [benchtime]
#                                rerun the suite `count` times (default 3,
#                                benchtime default 1s) and print a min/median
#                                ns/op delta table against the baseline JSON.
#                                Exits non-zero when any E6 negotiation,
#                                WireRPC or ShardedNegotiate benchmark
#                                regresses by more than maxpct percent
#                                (default 10) on its minimum.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "-smoke" ]; then
	exec go test -run '^$' -bench . -benchtime=1x ./...
fi

# bench_lines <file>: reduce `go test -bench` output to "name ns_per_op".
bench_lines() {
	awk '
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		for (i = 3; i <= NF; i++) if ($i == "ns/op") print name, $(i-1)
	}' "$1"
}

# json_lines <file>: reduce a BENCH_*.json file to "name ns_per_op".
json_lines() {
	sed -n 's/.*"name": "\([^"]*\)".*"ns_per_op": \([0-9.eE+-]*\).*/\1 \2/p' "$1"
}

if [ "${1:-}" = "-compare" ]; then
	base="${2:?usage: scripts/bench.sh -compare <baseline.json> [count] [maxpct] [benchtime]}"
	count="${3:-3}"
	maxpct="${4:-10}"
	benchtime="${5:-1s}"
	[ -f "$base" ] || { echo "bench: baseline $base not found" >&2; exit 2; }
	tmp=$(mktemp)
	basetmp=$(mktemp)
	trap 'rm -f "$tmp" "$basetmp"' EXIT

	go test -run '^$' -bench . -benchtime "$benchtime" -count "$count" . | tee "$tmp" >&2
	json_lines "$base" >"$basetmp"

	bench_lines "$tmp" | awk -v maxpct="$maxpct" '
	# stats(s) sorts the space-separated values in s and sets MIN and MED.
	function stats(s,    a, k, i, j, t) {
		k = split(s, a, " ")
		for (i = 2; i <= k; i++)
			for (j = i; j > 1 && a[j-1] + 0 > a[j] + 0; j--) {
				t = a[j]; a[j] = a[j-1]; a[j-1] = t
			}
		MIN = a[1] + 0
		if (k % 2) MED = a[(k + 1) / 2] + 0
		else MED = (a[k / 2] + a[k / 2 + 1]) / 2
	}
	FNR == NR { bvals[$1] = bvals[$1] " " $2; next }
	{
		cvals[$1] = cvals[$1] " " $2
		if (!($1 in seen)) { order[++n] = $1; seen[$1] = 1 }
	}
	END {
		printf "%-52s %12s %12s %8s %12s %12s %8s\n", "benchmark",
			"base-min", "cur-min", "min", "base-med", "cur-med", "med"
		fail = 0
		for (i = 1; i <= n; i++) {
			name = order[i]
			if (!(name in bvals)) {
				printf "%-52s %s\n", name, "(not in baseline)"
				continue
			}
			stats(bvals[name]); bmin = MIN; bmed = MED
			stats(cvals[name]); cmin = MIN; cmed = MED
			dmin = (cmin - bmin) / bmin * 100
			dmed = (cmed - bmed) / bmed * 100
			flag = ""
			if (name ~ /^Benchmark(E6|WireRPC|ShardedNegotiate)/ && cmin > bmin * (1 + maxpct / 100)) {
				flag = "  REGRESSION"
				fail = 1
			}
			printf "%-52s %12.0f %12.0f %+7.1f%% %12.0f %12.0f %+7.1f%%%s\n",
				name, bmin, cmin, dmin, bmed, cmed, dmed, flag
		}
		for (name in bvals)
			if (!(name in seen))
				printf "%-52s %s\n", name, "(removed since baseline)"
		if (fail) {
			printf "bench: E6 negotiation, WireRPC or ShardedNegotiate regressed more than %s%% vs baseline\n", maxpct > "/dev/stderr"
			exit 1
		}
	}
	' "$basetmp" -
	exit $?
fi

count="${1:-3}"
out="BENCH_$(date +%Y-%m-%d).json"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench . -benchmem -count "$count" . | tee "$tmp"

# Convert the standard benchmark lines into a JSON array. Every line looks
# like: BenchmarkName-8  1234  56789 ns/op  100 B/op  3 allocs/op
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	iters = $2; ns = ""; bytes = ""; allocs = ""
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		if ($i == "B/op") bytes = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns == "") next
	if (!first) printf ",\n"
	first = 0
	printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
	if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	printf "}"
}
END { print "\n]" }
' "$tmp" >"$out"

echo "bench: wrote $out"
