#!/bin/sh
# Benchmark runner.
#
#   scripts/bench.sh -smoke      run every benchmark once (the check.sh gate)
#   scripts/bench.sh [count]     run the root-package experiment benchmarks
#                                `count` times (default 3) and write
#                                BENCH_<date>.json with ns/op, B/op and
#                                allocs/op per run
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "-smoke" ]; then
	exec go test -run '^$' -bench . -benchtime=1x ./...
fi

count="${1:-3}"
out="BENCH_$(date +%Y-%m-%d).json"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench . -benchmem -count "$count" . | tee "$tmp"

# Convert the standard benchmark lines into a JSON array. Every line looks
# like: BenchmarkName-8  1234  56789 ns/op  100 B/op  3 allocs/op
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	iters = $2; ns = ""; bytes = ""; allocs = ""
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		if ($i == "B/op") bytes = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns == "") next
	if (!first) printf ",\n"
	first = 0
	printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
	if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	printf "}"
}
END { print "\n]" }
' "$tmp" >"$out"

echo "bench: wrote $out"
