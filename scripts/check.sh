#!/bin/sh
# CI gate: everything a change must pass before merging.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race -shuffle=on ./...

echo "== lifecycle stress gate (short)"
go test -race -short -count=1 -run 'TestLifecycleStress' ./internal/core

echo "== sharded lifecycle stress gate (race, short)"
go test -race -short -count=1 -run 'TestShardLifecycleStress' ./internal/shard

echo "== overload shed gate (race, short)"
go test -race -short -count=1 -run 'TestOverloadShedBurst|TestServeThreadsAdmission' .

echo "== telemetry zero-alloc gate"
go test -run 'TestNoopTelemetryZeroAlloc' ./internal/telemetry ./internal/core

echo "== cached-negotiate allocation gate (policy off must stay free)"
go test -count=1 -run 'TestCachedNegotiateAllocBound|TestPolicyOffAllocBound' ./internal/core

echo "== policy equivalence gate (race)"
go test -race -count=1 -run 'TestPolicyOffEquivalence|TestPolicyReorderedFailover' ./internal/policy

echo "== selection-policy study gate (E20)"
go test -count=1 -run 'TestE20PolicyStudy' ./internal/experiments

echo "== benchmarks (smoke, 1 iteration)"
./scripts/bench.sh -smoke

# Exercise the comparison machinery (parsing, stats, delta table) without
# gating on timings: a 1-iteration run on an arbitrary CI machine is far too
# noisy to hold to the 10% bar `make bench-compare` applies locally.
echo "== bench compare (smoke vs committed baseline)"
./scripts/bench.sh -compare BENCH_BASELINE.json 1 100000 1x >/dev/null

echo "== fuzz (smoke, 5s per target)"
go test -run '^$' -fuzz '^FuzzCurveEval$' -fuzztime 5s ./internal/profile
go test -run '^$' -fuzz '^FuzzServerInput$' -fuzztime 5s ./internal/protocol
go test -run '^$' -fuzz '^FuzzFrameDecode$' -fuzztime 5s ./internal/protocol
go test -run '^$' -fuzz '^FuzzTableClassify$' -fuzztime 5s ./internal/cost

echo "check: OK"
