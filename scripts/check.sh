#!/bin/sh
# CI gate: everything a change must pass before merging.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== benchmarks (smoke, 1 iteration)"
go test -run '^$' -bench . -benchtime=1x ./...

echo "check: OK"
