// Future reservations ([Haf 96], cited from Section 5 of the paper): users
// book a prime-time slot in advance instead of walking in. The negotiator
// classifies offers exactly as Section 5 prescribes, then books the best
// one whose resource demands fit the requested interval in the capacity
// calendars; when the slot is full it shifts the start time instead of
// blocking.
package main

import (
	"fmt"
	"log"
	"time"

	"qosneg/internal/booking"
	"qosneg/internal/client"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/offer"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
)

func main() {
	// One stored rendition: color TV video + CD audio, 30 minutes.
	dur := 30 * time.Minute
	doc := media.Document{
		ID: "evening-news", Title: "Evening news",
		Monomedia: []media.Monomedia{
			{ID: "video", Kind: qos.Video, Duration: dur,
				Variants: []media.Variant{media.VideoVariant("v1", "server-1", media.MPEG1,
					qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution}, dur)}},
			{ID: "audio", Kind: qos.Audio, Duration: dur,
				Variants: []media.Variant{media.AudioVariant("a1", "server-2", media.MPEG1Audio,
					qos.AudioQoS{Grade: qos.CDQuality}, dur)}},
		},
	}
	mach := client.Workstation("c1", "client-1")
	offers, err := offer.Enumerate(doc, mach, cost.DefaultPricing(), offer.EnumerateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	u := profile.DefaultProfiles()[0]
	ranked := offer.Classify(offers, u)
	perSession := int64(ranked[0].Choices[0].Variant.NetworkQoS().AvgBitRate +
		ranked[0].Choices[1].Variant.NetworkQoS().AvgBitRate)

	// Capacity calendars sized for 3 concurrent sessions.
	planner := booking.NewPlanner()
	for _, r := range []string{
		booking.ServerResource("server-1"),
		booking.ServerResource("server-2"),
		booking.LinkResource("client-1"),
	} {
		planner.AddResource(r, booking.MustCalendar(perSession*3))
	}
	neg := booking.NewNegotiator(planner)

	prime := 20 * time.Hour // 8 pm
	fmt.Printf("8 users book the %s slot (capacity: 3 concurrent sessions)\n\n", prime)
	for user := 1; user <= 8; user++ {
		booked := false
		for shift := time.Duration(0); shift <= 3*dur; shift += dur {
			res, err := neg.Negotiate(ranked, u, booking.LinkResource("client-1"), prime+shift, dur)
			if err != nil {
				continue
			}
			fmt.Printf("user %d: booked %s at %s", user, res.Offer.Key(), prime+shift)
			if shift > 0 {
				fmt.Printf("  (prime time full — shifted %s)", shift)
			}
			fmt.Println()
			booked = true
			break
		}
		if !booked {
			fmt.Printf("user %d: no slot within 3 shifts\n", user)
		}
	}
	cal, _ := planner.Resource(booking.LinkResource("client-1"))
	fmt.Printf("\nclient link at prime time: %d of %d units committed\n",
		cal.Peak(prime, prime+dur), cal.Capacity())
}
