// Multi-domain negotiation ([Haf 95b], the hierarchical extension of the
// CITR QoS sub-project): two providers both carry the requested article; a
// broker runs the negotiation procedure in each domain, compares the
// resulting user offers under the user's importance factors, keeps the best
// reservation and releases the other. Degrading one provider mid-demo shows
// the broker steering new sessions to the healthy one.
package main

import (
	"fmt"
	"log"
	"time"

	"qosneg/internal/domain"
	"qosneg/internal/profile"
	"qosneg/internal/testbed"
)

func main() {
	bedA := testbed.MustNew(testbed.Spec{})
	bedB := testbed.MustNew(testbed.Spec{})
	for name, bed := range map[string]*testbed.Bed{"provider-a": bedA, "provider-b": bedB} {
		if _, err := bed.AddNewsArticle("news-1", "Election night", 2*time.Minute); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	broker := domain.NewBroker(
		&domain.Domain{Name: "provider-a", Manager: bedA.Manager, Registry: bedA.Registry},
		&domain.Domain{Name: "provider-b", Manager: bedB.Manager, Registry: bedB.Registry},
	)
	u := profile.DefaultProfiles()[0] // tv-quality

	negotiate := func(label string) {
		res, err := broker.Negotiate(bedA.Client(1), "news-1", u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s → %s via %s", label, res.Status, res.Domain)
		if res.Session != nil {
			fmt.Printf(" (video %s at %s)", res.Offer.Video, res.Session.Cost())
		}
		fmt.Printf("  [per-domain: %v]\n", res.PerDomain)
	}

	negotiate("both providers healthy")

	fmt.Println("\n-- provider-a's servers lose 99% of their disk bandwidth --")
	for _, srv := range bedA.Servers {
		srv.SetDegradation(0.99)
	}
	negotiate("provider-a degraded")

	fmt.Println("\n-- provider-a recovers --")
	for _, srv := range bedA.Servers {
		srv.SetDegradation(0)
	}
	negotiate("after recovery")
}
