// Distributed negotiation over TCP: the profile manager on the client
// machine talks to the QoS-manager daemon over the wire protocol, exactly
// like qosctl talks to qosnegd — here both ends run in one process on a
// loopback listener. Demonstrates the full round: catalog listing,
// negotiation, server-side choicePeriod enforcement, confirmation, and
// session inspection.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"qosneg"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/protocol"
)

func main() {
	ctx := context.Background()
	sys, err := qosneg.New(qosneg.WithClients(2), qosneg.WithServers(2))
	if err != nil {
		log.Fatal(err)
	}
	for i, title := range []string{"Election night", "Hockey final", "Weather"} {
		id := fmt.Sprintf("news-%d", i+1)
		if _, err := sys.AddNewsArticle(media.DocumentID(id), title, 2*time.Minute); err != nil {
			log.Fatal(err)
		}
	}

	// Daemon side.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := protocol.NewServer(sys.Manager, sys.Registry)
	go srv.Serve(l)
	defer srv.Close()
	fmt.Printf("daemon listening on %s\n", l.Addr())

	// Client side.
	c, err := protocol.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	docs, err := c.ListDocuments(ctx, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("catalog:")
	for _, d := range docs {
		fmt.Printf("  %-8s %-20s %d components\n", d.ID, d.Title, d.Components)
	}

	mach, err := sys.Client("client-1")
	if err != nil {
		log.Fatal(err)
	}
	u := profile.DefaultProfiles()[0] // tv-quality, 30 s choice period

	// Round 1: negotiate and let the choice period expire — the daemon's
	// timer aborts the session and reclaims resources.
	u.Desired.Time.ChoicePeriod = 100 * time.Millisecond
	u.Worst.Time.ChoicePeriod = 100 * time.Millisecond
	res, err := c.Negotiate(ctx, mach, docs[0].ID, u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round 1: %s, offer video %s at %s, choice period %s\n",
		res.Status, res.Offer.Video, res.Cost, res.ChoicePeriod)
	time.Sleep(300 * time.Millisecond) // let it lapse
	info, err := c.Session(ctx, res.Session)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round 1: no confirmation within %s → session state %q (expired: %d)\n",
		res.ChoicePeriod, info.State, srv.Expired())

	// Round 2: negotiate again and confirm in time.
	u.Desired.Time.ChoicePeriod = 30 * time.Second
	u.Worst.Time.ChoicePeriod = 30 * time.Second
	res, err = c.Negotiate(ctx, mach, docs[0].ID, u)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Confirm(ctx, res.Session); err != nil {
		log.Fatal(err)
	}
	info, err = c.Session(ctx, res.Session)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round 2: confirmed → session %d state %q, cost %s\n",
		info.Session, info.State, info.Cost)

	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon stats: %d requests, %d succeeded\n", st.Requests, st.Succeeded)
}
