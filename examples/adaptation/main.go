// Adaptation walk-through on a dual-path network: a session streams over
// the primary route; mid-playout the primary inter-switch link loses 95% of
// its capacity; the adaptation monitor detects the QoS violation, the QoS
// manager re-runs the commitment step over the remaining classified offers,
// and the presentation continues from the interrupted position over the
// backup configuration — without user intervention (Section 4).
package main

import (
	"fmt"
	"log"
	"time"

	"qosneg/internal/adaptation"
	"qosneg/internal/client"
	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/media"
	"qosneg/internal/network"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/registry"
	"qosneg/internal/session"
	"qosneg/internal/sim"
	"qosneg/internal/transport"
)

func main() {
	// Two servers behind disjoint routes; only the topology differs from
	// the star-based examples, so the substrate is assembled by hand.
	net := network.New()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(net.AddDuplex("access", "client-1", "sw1", 100*qos.MBitPerSecond, time.Millisecond, time.Millisecond, 0.0003))
	must(net.AddDuplex("route-a", "sw1", "server-1", 10*qos.MBitPerSecond, 2*time.Millisecond, 2*time.Millisecond, 0.0003))
	must(net.AddDuplex("route-b", "sw1", "server-2", 10*qos.MBitPerSecond, 3*time.Millisecond, 2*time.Millisecond, 0.0003))

	reg := registry.New()
	man := core.NewManager(reg, transport.New(net, 3), cost.DefaultPricing(), core.DefaultOptions())
	servers := map[media.ServerID]*cmfs.Server{}
	for _, id := range []media.ServerID{"server-1", "server-2"} {
		srv := cmfs.MustServer(id, cmfs.DefaultConfig())
		servers[id] = srv
		man.AddServer(srv, network.NodeID(id))
	}

	doc := media.BuildNewsArticle(media.NewsArticleSpec{
		ID:       "news-1",
		Title:    "Adaptation demo",
		Duration: 2 * time.Minute,
		Servers:  []media.ServerID{"server-1", "server-2"},
		VideoQualities: []qos.VideoQoS{
			{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.Grey, FrameRate: 25, Resolution: qos.TVResolution},
			{Color: qos.BlackWhite, FrameRate: 15, Resolution: qos.TVResolution},
		},
		AudioQualities: []qos.AudioQoS{
			{Grade: qos.CDQuality}, {Grade: qos.TelephoneQuality},
		},
	})
	must(reg.Add(doc))

	mach := client.Workstation("client-1", "client-1")
	u := profile.DefaultProfiles()[0] // tv-quality
	u.Desired.Cost.MaxCost = cost.Dollars(12)
	u.Worst.Cost.MaxCost = cost.Dollars(12)

	res, err := man.Negotiate(mach, doc.ID, u)
	must(err)
	if !res.Status.Reserved() {
		log.Fatalf("negotiation: %v (%s)", res.Status, res.Reason)
	}
	s := res.Session
	fmt.Printf("t=0s    %s: %s\n", res.Status, s.Current.SystemOffer)
	videoServer := s.Current.Choices[0].Variant.Server
	fmt.Printf("        video streams from %s\n", videoServer)

	eng := sim.NewEngine()
	mon := adaptation.New(man, net, servers["server-1"], servers["server-2"])
	mon.Attach(eng, 5*time.Second, func(r adaptation.Report) {
		for _, tr := range r.Adapted {
			fmt.Printf("t=%-5s adaptation: %s → %s (restart at %s)\n",
				eng.Now(), tr.From.Key(), tr.To.Key(), time.Duration(tr.Position))
		}
	})

	player := session.NewPlayer(eng, man)
	var out session.Outcome
	must(player.Play(s, doc, func(o session.Outcome) { out = o }))

	// Choke the route carrying the video at t=40s.
	route := network.LinkID("route-a:rev")
	if videoServer == "server-2" {
		route = "route-b:rev"
	}
	eng.MustSchedule(40*time.Second, func() {
		fmt.Printf("t=%-5s EVENT: link %s degraded to 5%% capacity\n", eng.Now(), route)
		must(net.SetLinkDegradation(route, 0.95))
	})

	eng.Run(10 * time.Minute)
	fmt.Printf("t=%-5s playout %s at position %s, %d transition(s), final offer %s\n",
		out.FinishedAt, out.State, out.Position, out.Transitions, s.Current.Key())
}
