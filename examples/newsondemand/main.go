// News-on-demand under load: the scenario the paper's introduction
// motivates. Four client workstations request articles from a Zipf-skewed
// catalog at Poisson arrival times; the QoS manager negotiates each request
// (degrading offers as resources tighten), sessions play out on the
// simulation clock, and the adaptation monitor repairs sessions when a
// server loses half its disk bandwidth mid-run.
package main

import (
	"fmt"
	"log"
	"time"

	"qosneg"
	"qosneg/internal/adaptation"
	"qosneg/internal/client"
	"qosneg/internal/core"
	"qosneg/internal/media"
	"qosneg/internal/profile"
	"qosneg/internal/qos"
	"qosneg/internal/session"
	"qosneg/internal/sim"
	"qosneg/internal/workload"
)

func main() {
	sys, err := qosneg.New(
		qosneg.WithClients(4),
		qosneg.WithServers(3),
		qosneg.WithAccessCapacity(25*qos.MBitPerSecond),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Catalog of six articles spread across the three servers.
	var docIDs []media.DocumentID
	for i := 1; i <= 6; i++ {
		id := media.DocumentID(fmt.Sprintf("news-%d", i))
		if _, err := sys.AddNewsArticle(id, fmt.Sprintf("Article %d", i), 2*time.Minute); err != nil {
			log.Fatal(err)
		}
		docIDs = append(docIDs, id)
	}

	var clients []client.Machine
	for i := 1; i <= 4; i++ {
		m, err := sys.Client(fmt.Sprintf("client-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		clients = append(clients, m)
	}
	profiles := profile.DefaultProfiles()

	gen, err := workload.NewGenerator(workload.Spec{
		Seed:             7,
		MeanInterArrival: 6 * time.Second,
		Documents:        docIDs,
		Clients:          clients,
		Profiles:         profiles,
		Weights:          []int{3, 1, 2}, // tv-quality, premium, economy
	})
	if err != nil {
		log.Fatal(err)
	}

	eng := sim.NewEngine()
	player := sys.Player(eng)
	sys.Monitor().Attach(eng, 5*time.Second, func(r adaptation.Report) {
		for _, tr := range r.Adapted {
			fmt.Printf("t=%-6s ADAPT  session %d switched offers at position %s\n",
				eng.Now(), tr.Session, time.Duration(tr.Position))
		}
		for _, id := range r.Failed {
			fmt.Printf("t=%-6s ABORT  session %d could not be adapted\n", eng.Now(), id)
		}
	})

	var completed, aborted int
	gen.Drive(eng, 60, func(req workload.Request) {
		res, err := sys.Manager.Negotiate(req.Client, req.Document, req.Profile)
		if err != nil {
			log.Fatal(err)
		}
		switch res.Status {
		case core.Succeeded, core.FailedWithOffer:
			fmt.Printf("t=%-6s %-16s %s on %s: video %s at %s\n",
				eng.Now(), res.Status, req.Profile.Name, req.Document,
				res.Offer.Video, res.Session.Cost())
			doc, _ := sys.Registry.Document(req.Document)
			player.Play(res.Session, doc, func(o session.Outcome) {
				if o.State == core.Completed {
					completed++
				} else {
					aborted++
				}
			})
		default:
			fmt.Printf("t=%-6s %-16s %s on %s (%s)\n",
				eng.Now(), res.Status, req.Profile.Name, req.Document, res.Reason)
		}
	})

	// Mid-run congestion: server-1 loses 90% of its disk bandwidth for a
	// minute, then recovers.
	eng.MustSchedule(90*time.Second, func() {
		fmt.Printf("t=%-6s EVENT  server-1 degraded to 10%% disk bandwidth\n", eng.Now())
		sys.Servers["server-1"].SetDegradation(0.9)
	})
	eng.MustSchedule(150*time.Second, func() {
		fmt.Printf("t=%-6s EVENT  server-1 recovered\n", eng.Now())
		sys.Servers["server-1"].SetDegradation(0)
	})

	eng.Run(20 * time.Minute)

	st := sys.Manager.Stats()
	fmt.Println()
	fmt.Printf("requests:   %d\n", st.Requests)
	fmt.Printf("  SUCCEEDED %d, FAILEDWITHOFFER %d, FAILEDTRYLATER %d\n",
		st.Succeeded, st.FailedWithOffer, st.FailedTryLater)
	fmt.Printf("playouts:   %d completed, %d aborted\n", completed, aborted)
	fmt.Printf("adaptations: %d performed, %d failed\n", st.Adaptations, st.AdaptationFailures)
}
