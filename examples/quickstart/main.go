// Quickstart: assemble a news-on-demand system, register an article,
// negotiate QoS for it with a factory profile, inspect the offer, confirm,
// and play it to completion on the simulation clock.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"qosneg"
	"qosneg/internal/session"
	"qosneg/internal/sim"
)

func main() {
	// A system with one client workstation and two media file servers
	// around a switch, default cost tables and disk models.
	sys, err := qosneg.New(qosneg.WithClients(1), qosneg.WithServers(2))
	if err != nil {
		log.Fatal(err)
	}

	// A three-minute news article with video variants (color/grey/b&w at
	// several frame rates), CD and telephone audio, and captions in two
	// languages, spread across both servers.
	doc, err := sys.AddNewsArticle("news-1", "Election night special", 3*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %q with %d monomedia components\n", doc.Title, len(doc.Monomedia))

	// Negotiate with the factory "tv-quality" profile: color video at
	// 25 frames/s TV resolution, CD audio, 6$ budget.
	res, err := sys.Negotiate(context.Background(), "client-1", doc.ID, "tv-quality")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("negotiation status: %s\n", res.Status)
	if !res.Status.Reserved() {
		log.Fatalf("no offer reserved: %s", res.Reason)
	}
	fmt.Printf("user offer: video %s, audio %s, cost %s (confirm within %s)\n",
		res.Offer.Video, res.Offer.Audio, res.Session.Cost(), res.Session.ChoicePeriod)

	// Step 6: confirm and play on the discrete-event clock.
	eng := sim.NewEngine()
	player := sys.Player(eng)
	var outcome session.Outcome
	if err := player.Play(res.Session, doc, func(o session.Outcome) { outcome = o }); err != nil {
		log.Fatal(err)
	}
	eng.RunAll()
	fmt.Printf("playout %s at position %s after %s of virtual time\n",
		outcome.State, outcome.Position, outcome.FinishedAt)
}
