package qosneg_test

import (
	"context"
	"fmt"
	"time"

	"qosneg"
	"qosneg/internal/core"
	"qosneg/internal/session"
	"qosneg/internal/sim"
)

// Example shows the complete public-API flow: assemble a system with
// functional options, register a news article, negotiate with a factory
// profile under a context, confirm and play to completion on the
// simulation clock.
func Example() {
	sys, err := qosneg.New(qosneg.WithClients(1), qosneg.WithServers(2))
	if err != nil {
		panic(err)
	}
	doc, err := sys.AddNewsArticle("news-1", "Election night", time.Minute)
	if err != nil {
		panic(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := sys.Negotiate(ctx, "client-1", doc.ID, "tv-quality")
	if err != nil {
		panic(err)
	}
	fmt.Println("status:", res.Status)
	fmt.Println("video:", res.Offer.Video)
	fmt.Println("audio:", res.Offer.Audio)

	eng := sim.NewEngine()
	var out session.Outcome
	if err := sys.Player(eng).Play(res.Session, doc, func(o session.Outcome) { out = o }); err != nil {
		panic(err)
	}
	eng.RunAll()
	fmt.Println("playout:", out.State, "at", out.Position)
	fmt.Println("completed:", out.State == core.Completed)
	// Output:
	// status: SUCCEEDED
	// video: (color, 25 frames/s, 480 pixels/line)
	// audio: (CD quality, english)
	// playout: completed at 1m0s
	// completed: true
}
