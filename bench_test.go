// Benchmarks regenerating the performance-relevant half of every experiment
// in EXPERIMENTS.md: one benchmark per paper artefact (E1–E12), so
// `go test -bench=. -benchmem` reproduces the timing/throughput columns.
// The correctness half of each artefact lives in the package tests and in
// `go run ./cmd/nodsim -exp all`.
package qosneg

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qosneg/internal/adaptation"
	"qosneg/internal/booking"
	"qosneg/internal/client"
	"qosneg/internal/cmfs"
	"qosneg/internal/core"
	"qosneg/internal/cost"
	"qosneg/internal/domain"
	"qosneg/internal/media"
	"qosneg/internal/offer"
	"qosneg/internal/profile"
	"qosneg/internal/protocol"
	"qosneg/internal/qos"
	"qosneg/internal/session"
	"qosneg/internal/sim"
	"qosneg/internal/telemetry"
	"qosneg/internal/workload"
)

// benchProfile is the Section 5 example request with default importances.
func benchProfile() profile.UserProfile {
	return profile.UserProfile{
		Name: "bench",
		Desired: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.CDQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Worst: profile.MMProfile{
			Video: &qos.VideoQoS{Color: qos.BlackWhite, FrameRate: 10, Resolution: qos.TVResolution},
			Audio: &qos.AudioQoS{Grade: qos.TelephoneQuality},
			Cost:  profile.CostProfile{MaxCost: cost.Dollars(12)},
		},
		Importance: profile.DefaultImportance(),
	}
}

func benchSystem(b *testing.B, clients, servers int) (*System, media.Document) {
	b.Helper()
	sys, err := New(WithClients(clients), WithServers(servers))
	if err != nil {
		b.Fatal(err)
	}
	doc, err := sys.AddNewsArticle("news-1", "Bench article", 2*time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	return sys, doc
}

// BenchmarkE1Classification measures classifying the Section 5.1 offers.
func BenchmarkE1Classification(b *testing.B) {
	sys, doc := benchSystem(b, 1, 2)
	mach, _ := sys.Client("client-1")
	offers, err := offer.Enumerate(doc, mach, sys.Pricing, offer.EnumerateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	u := benchProfile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offer.Classify(offers, u)
	}
}

// BenchmarkE2SNS measures the static-negotiation-status computation.
func BenchmarkE2SNS(b *testing.B) {
	sys, doc := benchSystem(b, 1, 2)
	mach, _ := sys.Client("client-1")
	offers, _ := offer.Enumerate(doc, mach, sys.Pricing, offer.EnumerateOptions{})
	u := benchProfile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range offers {
			offer.SNS(o, u)
		}
	}
}

// BenchmarkE3OIF measures the overall-importance-factor computation.
func BenchmarkE3OIF(b *testing.B) {
	sys, doc := benchSystem(b, 1, 2)
	mach, _ := sys.Client("client-1")
	offers, _ := offer.Enumerate(doc, mach, sys.Pricing, offer.EnumerateOptions{})
	u := benchProfile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range offers {
			offer.OIF(o, u)
		}
	}
}

// BenchmarkE4Mapping measures the Section 6 user-QoS → network-QoS mapping.
func BenchmarkE4Mapping(b *testing.B) {
	blocks := qos.BlockStats{MaxBlockBytes: 12000, AvgBlockBytes: 6000}
	s := qos.VideoSetting(qos.VideoQoS{Color: qos.Color, FrameRate: 25, Resolution: qos.TVResolution})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qos.MapSetting(s, blocks)
	}
}

// BenchmarkE5Cost measures the Section 7 CostDoc computation.
func BenchmarkE5Cost(b *testing.B) {
	p := cost.DefaultPricing()
	items := []cost.Item{
		{Rate: 2 * qos.MBitPerSecond, Duration: 2 * time.Minute},
		{Rate: 1411 * qos.KBitPerSecond, Duration: 2 * time.Minute},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Document(cost.Cents(50), cost.BestEffort, items)
	}
}

// BenchmarkE6Negotiate measures the full six-step negotiation procedure
// (enumerate, classify, commit, rollback via Reject).
func BenchmarkE6Negotiate(b *testing.B) {
	sys, doc := benchSystem(b, 1, 2)
	u := benchProfile()
	mach, _ := sys.Client("client-1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.NegotiateWith(context.Background(), mach, doc.ID, u)
		if err != nil {
			b.Fatal(err)
		}
		if res.Session != nil {
			if err := sys.Manager.Reject(res.Session.ID); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE6NegotiateUncached is the cold path: the candidate-set cache is
// disabled, so every request re-enumerates, re-maps and re-prices. This is
// the number to hold steady across PRs — cache wins must not be bought with
// a slower miss path.
func BenchmarkE6NegotiateUncached(b *testing.B) {
	sys, err := New(WithClients(1), WithServers(2), WithOfferCache(-1))
	if err != nil {
		b.Fatal(err)
	}
	doc, err := sys.AddNewsArticle("news-1", "Bench article", 2*time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	u := benchProfile()
	mach, _ := sys.Client("client-1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.NegotiateWith(context.Background(), mach, doc.ID, u)
		if err != nil {
			b.Fatal(err)
		}
		if res.Session != nil {
			if err := sys.Manager.Reject(res.Session.ID); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE6NegotiateCached is the hot path: the candidate-set cache is
// warmed before the timer starts, so every measured negotiation reuses the
// memoized static-negotiation result and only classifies and commits.
func BenchmarkE6NegotiateCached(b *testing.B) {
	sys, doc := benchSystem(b, 1, 2)
	u := benchProfile()
	mach, _ := sys.Client("client-1")
	// Warm the cache: the first round is the miss that populates it.
	res, err := sys.NegotiateWith(context.Background(), mach, doc.ID, u)
	if err != nil {
		b.Fatal(err)
	}
	if res.Session != nil {
		sys.Manager.Reject(res.Session.ID)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.NegotiateWith(context.Background(), mach, doc.ID, u)
		if err != nil {
			b.Fatal(err)
		}
		if res.Session != nil {
			if err := sys.Manager.Reject(res.Session.ID); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if st := sys.Manager.Stats(); st.OfferCacheHits < st.Requests-2 {
		b.Fatalf("measured loop was not cache-hot: %d hits over %d requests", st.OfferCacheHits, st.Requests)
	}
}

// BenchmarkHotDocumentThroughput is the production shape the cache targets:
// several clients hammering the same popular article concurrently. The
// cached and uncached runs differ only in WithOfferCache.
func BenchmarkHotDocumentThroughput(b *testing.B) {
	for _, mode := range []struct {
		name  string
		cache int
	}{{"cached", 0}, {"uncached", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			const clients = 4
			sys, err := New(WithClients(clients), WithServers(2), WithOfferCache(mode.cache))
			if err != nil {
				b.Fatal(err)
			}
			doc, err := sys.AddNewsArticle("news-1", "Bench article", 2*time.Minute)
			if err != nil {
				b.Fatal(err)
			}
			u := benchProfile()
			machines := make([]client.Machine, clients)
			for i := range machines {
				machines[i], _ = sys.Client(fmt.Sprintf("client-%d", i+1))
			}
			var next atomic.Uint64
			b.SetParallelism(clients)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mach := machines[int(next.Add(1)-1)%clients]
				for pb.Next() {
					res, err := sys.Manager.Negotiate(mach, doc.ID, u)
					if err != nil {
						b.Error(err)
						return
					}
					if res.Session != nil {
						if err := sys.Manager.Reject(res.Session.ID); err != nil {
							b.Error(err)
							return
						}
					}
				}
			})
		})
	}
}

// BenchmarkE6NegotiateTelemetry is BenchmarkE6Negotiate with the telemetry
// subsystem live — a metrics registry recording outcome counters and
// per-step latency histograms, plus a ring tracer capturing spans. Its
// ns/op against the plain E6 run is the observability overhead of an
// instrumented daemon, which must stay within a few percent.
func BenchmarkE6NegotiateTelemetry(b *testing.B) {
	reg := telemetry.NewRegistry()
	sys, err := New(WithClients(1), WithServers(2),
		WithMetrics(reg), WithTracer(telemetry.NewRing(256)))
	if err != nil {
		b.Fatal(err)
	}
	doc, err := sys.AddNewsArticle("news-1", "Bench article", 2*time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	u := benchProfile()
	mach, _ := sys.Client("client-1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.NegotiateWith(context.Background(), mach, doc.ID, u)
		if err != nil {
			b.Fatal(err)
		}
		if res.Session != nil {
			if err := sys.Manager.Reject(res.Session.ID); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkNegotiateParallel measures negotiate+reject rounds issued
// concurrently by independent clients against shared servers: the
// production shape of the workload, where the manager's session-table lock
// must not serialize unrelated negotiations. clients=1 is the serial
// baseline; higher counts interleave whole negotiations.
func BenchmarkNegotiateParallel(b *testing.B) {
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			sys, doc := benchSystem(b, clients, 2)
			u := benchProfile()
			machines := make([]client.Machine, clients)
			for i := range machines {
				machines[i], _ = sys.Client(fmt.Sprintf("client-%d", i+1))
			}
			var next atomic.Uint64
			b.SetParallelism(clients)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mach := machines[int(next.Add(1)-1)%clients]
				for pb.Next() {
					res, err := sys.Manager.Negotiate(mach, doc.ID, u)
					if err != nil {
						b.Error(err)
						return
					}
					if res.Session != nil {
						if err := sys.Manager.Reject(res.Session.ID); err != nil {
							b.Error(err)
							return
						}
					}
				}
			})
		})
	}
}

// BenchmarkShardedNegotiate measures concurrent negotiate+reject rounds
// against a sharded manager fleet at 1, 2, 4 and 8 shards, with enough
// client machines to keep every shard busy. shards=1 prices the routing
// layer itself (one-shard fleet vs the plain manager of
// BenchmarkNegotiateParallel); higher counts measure how much manager-side
// serialization — session table, breaker state, offer cache — sharding
// removes. Throughput scales with cores: on a multi-core host 4 shards
// should clear well over 2.5× the 1-shard rate; a single-core runner can
// only show the routing overhead staying flat.
func BenchmarkShardedNegotiate(b *testing.B) {
	const clients = 8
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sys, err := New(WithClients(clients), WithServers(2), WithShards(shards))
			if err != nil {
				b.Fatal(err)
			}
			doc, err := sys.AddNewsArticle("news-1", "Bench article", 2*time.Minute)
			if err != nil {
				b.Fatal(err)
			}
			u := benchProfile()
			machines := make([]client.Machine, clients)
			for i := range machines {
				machines[i], _ = sys.Client(fmt.Sprintf("client-%d", i+1))
			}
			var next atomic.Uint64
			b.SetParallelism(clients)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mach := machines[int(next.Add(1)-1)%clients]
				for pb.Next() {
					res, err := sys.Manager.Negotiate(mach, doc.ID, u)
					if err != nil {
						b.Error(err)
						return
					}
					if res.Session != nil {
						if err := sys.Manager.Reject(res.Session.ID); err != nil {
							b.Error(err)
							return
						}
					}
				}
			})
		})
	}
}

// BenchmarkE7Adaptation measures one adaptation transition: degrade the
// serving machine, switch the session, recover, switch back.
func BenchmarkE7Adaptation(b *testing.B) {
	sys, doc := benchSystem(b, 1, 2)
	u := benchProfile()
	mach, _ := sys.Client("client-1")
	res, err := sys.NegotiateWith(context.Background(), mach, doc.ID, u)
	if err != nil || !res.Status.Reserved() {
		b.Fatalf("negotiate: %v %v", res.Status, err)
	}
	if err := sys.Manager.Confirm(res.Session.ID); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := res.Session.Current.Choices[0].Variant.Server
		sys.Servers[victim].SetDegradation(0.99)
		if _, err := sys.Manager.Adapt(res.Session.ID); err != nil {
			b.Fatal(err)
		}
		sys.Servers[victim].SetDegradation(0)
	}
}

// BenchmarkE8Blocking measures one full load-study round: 120 Poisson
// arrivals with playout and completion on the simulation clock.
func BenchmarkE8Blocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := New(WithClients(4), WithServers(3), WithAccessCapacity(25*qos.MBitPerSecond))
		if err != nil {
			b.Fatal(err)
		}
		var ids []media.DocumentID
		var machines []client.Machine
		for d := 1; d <= 6; d++ {
			id := media.DocumentID(fmt.Sprintf("news-%d", d))
			sys.AddNewsArticle(id, "A", 2*time.Minute)
			ids = append(ids, id)
		}
		for c := 1; c <= 4; c++ {
			m, _ := sys.Client(fmt.Sprintf("client-%d", c))
			machines = append(machines, m)
		}
		gen, err := workload.NewGenerator(workload.Spec{
			Seed: 1996, MeanInterArrival: 5 * time.Second,
			Documents: ids, Clients: machines,
			Profiles: []profile.UserProfile{benchProfile()},
		})
		if err != nil {
			b.Fatal(err)
		}
		eng := sim.NewEngine()
		gen.Drive(eng, 120, func(req workload.Request) {
			res, err := sys.Manager.Negotiate(req.Client, req.Document, req.Profile)
			if err != nil || !res.Status.Reserved() {
				return
			}
			sys.Manager.Confirm(res.Session.ID)
			id := res.Session.ID
			eng.MustSchedule(2*time.Minute, func() { sys.Manager.Complete(id) })
		})
		eng.RunAll()
	}
}

// BenchmarkE9Enumerate measures offer enumeration + classification as the
// variant product grows (the E9 scaling rows).
func BenchmarkE9Enumerate(b *testing.B) {
	mach := client.Workstation("c1", "n1")
	pricing := cost.DefaultPricing()
	u := benchProfile()
	for _, variants := range []int{2, 4, 8, 16} {
		doc := synthBenchDoc(3, variants)
		b.Run(fmt.Sprintf("media=3/variants=%d", variants), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				offers, err := offer.Enumerate(doc, mach, pricing, offer.EnumerateOptions{})
				if err != nil {
					b.Fatal(err)
				}
				offer.Classify(offers, u)
			}
		})
	}
}

// synthBenchDoc mirrors the experiment harness's synthetic document.
func synthBenchDoc(mediaCount, variants int) media.Document {
	doc := media.Document{ID: "synthetic", Title: "Synthetic"}
	dur := time.Minute
	for m := 0; m < mediaCount; m++ {
		switch m % 3 {
		case 0:
			mono := media.Monomedia{ID: media.MonomediaID(fmt.Sprintf("video-%d", m)), Kind: qos.Video, Duration: dur}
			for v := 0; v < variants; v++ {
				mono.Variants = append(mono.Variants, media.VideoVariant(
					media.VariantID(fmt.Sprintf("v%d-%d", m, v)), "server-1", media.MPEG1,
					qos.VideoQoS{Color: qos.ColorQualities()[v%4], FrameRate: 5 + v%25, Resolution: 100 + 50*(v%10)},
					dur))
			}
			doc.Monomedia = append(doc.Monomedia, mono)
		case 1:
			mono := media.Monomedia{ID: media.MonomediaID(fmt.Sprintf("audio-%d", m)), Kind: qos.Audio, Duration: dur}
			for v := 0; v < variants; v++ {
				grade := qos.TelephoneQuality
				if v%2 == 1 {
					grade = qos.CDQuality
				}
				mono.Variants = append(mono.Variants, media.AudioVariant(
					media.VariantID(fmt.Sprintf("a%d-%d", m, v)), "server-1", media.MPEG1Audio,
					qos.AudioQoS{Grade: grade, Language: qos.Language(fmt.Sprintf("l%d", v))}, dur))
			}
			doc.Monomedia = append(doc.Monomedia, mono)
		default:
			mono := media.Monomedia{ID: media.MonomediaID(fmt.Sprintf("text-%d", m)), Kind: qos.Text}
			for v := 0; v < variants; v++ {
				mono.Variants = append(mono.Variants, media.TextVariant(
					media.VariantID(fmt.Sprintf("t%d-%d", m, v)), "server-1",
					qos.Language(fmt.Sprintf("l%d", v)), 1024))
			}
			doc.Monomedia = append(doc.Monomedia, mono)
		}
	}
	return doc
}

// BenchmarkE10Confirm measures the reserve→confirm→complete session
// lifecycle.
func BenchmarkE10Confirm(b *testing.B) {
	sys, doc := benchSystem(b, 1, 2)
	u := benchProfile()
	mach, _ := sys.Client("client-1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.NegotiateWith(context.Background(), mach, doc.ID, u)
		if err != nil || !res.Status.Reserved() {
			b.Fatalf("negotiate: %v %v", res.Status, err)
		}
		if err := sys.Manager.Confirm(res.Session.ID); err != nil {
			b.Fatal(err)
		}
		if err := sys.Manager.Complete(res.Session.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11Atomic measures whole-document negotiation against the same
// document split per monomedia (the atomicity ablation's fast path).
func BenchmarkE11Atomic(b *testing.B) {
	sys, doc := benchSystem(b, 1, 2)
	u := benchProfile()
	mach, _ := sys.Client("client-1")
	b.Run("document-atomic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sys.NegotiateWith(context.Background(), mach, doc.ID, u)
			if err != nil {
				b.Fatal(err)
			}
			if res.Session != nil {
				sys.Manager.Reject(res.Session.ID)
			}
		}
	})
	b.Run("per-monomedia", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, mono := range doc.Monomedia {
				sub := media.Document{ID: doc.ID, Monomedia: []media.Monomedia{mono}}
				offers, err := offer.Enumerate(sub, mach, sys.Pricing, offer.EnumerateOptions{})
				if err != nil {
					b.Fatal(err)
				}
				offer.Classify(offers, u)
			}
		}
	})
}

// BenchmarkE12CostTables measures throughput-class lookup, the hot path of
// the cost model under load.
func BenchmarkE12CostTables(b *testing.B) {
	p := cost.DefaultPricing()
	rates := []qos.BitRate{64_000, 700_000, 2_000_000, 5_000_000, 20_000_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Network.PricePerSecond(rates[i%len(rates)])
	}
}

// BenchmarkProtocolRoundTrip measures a negotiate+reject round over a TCP
// loopback connection (the distributed deployment's unit of work).
func BenchmarkProtocolRoundTrip(b *testing.B) {
	sys, doc := benchSystem(b, 1, 2)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := protocol.NewServer(sys.Manager, sys.Registry)
	go srv.Serve(l)
	defer func() {
		l.Close()
		srv.Close()
	}()
	c, err := protocol.Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	mach, _ := sys.Client("client-1")
	u := benchProfile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Negotiate(context.Background(), mach, doc.ID, u)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status.Reserved() {
			if err := c.Reject(context.Background(), res.Session); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWireRPC measures wire-protocol RPC throughput over a single
// client (hence a single TCP connection) shared by 1, 64 and 1000
// concurrent callers, once per codec. The JSON line codec serializes
// callers on the connection; the binary codec multiplexes them onto
// streams, which is the redesign's headline win at high concurrency. The
// RPC is the lightest one (list-sessions on an idle system) so the numbers
// measure transport overhead, not handler cost; p99 latency is reported
// alongside ns/op.
func BenchmarkWireRPC(b *testing.B) {
	for _, tc := range []struct{ label, codec string }{
		{"json", protocol.CodecJSON},
		{"binary", protocol.CodecBinary},
	} {
		for _, conc := range []int{1, 64, 1000} {
			b.Run(fmt.Sprintf("codec=%s/clients=%d", tc.label, conc), func(b *testing.B) {
				sys, _ := benchSystem(b, 1, 2)
				l, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				srv := protocol.NewServer(sys.Manager, sys.Registry,
					protocol.WithServerWire(protocol.WireOptions{MaxStreams: 1024}))
				go srv.Serve(l)
				defer func() {
					l.Close()
					srv.Close()
				}()
				c, err := protocol.Dial(l.Addr().String(), protocol.WithWire(protocol.WireOptions{
					Codecs:     []string{tc.codec},
					MaxStreams: 1024,
				}))
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				if _, err := c.ListSessions(context.Background()); err != nil {
					b.Fatal(err)
				}
				lat := make([][]time.Duration, conc)
				var next atomic.Int64
				var wg sync.WaitGroup
				b.ResetTimer()
				for w := 0; w < conc; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						var samples []time.Duration
						for next.Add(1) <= int64(b.N) {
							t0 := time.Now()
							if _, err := c.ListSessions(context.Background()); err != nil {
								b.Error(err)
								return
							}
							samples = append(samples, time.Since(t0))
						}
						lat[w] = samples
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				var all []time.Duration
				for _, s := range lat {
					all = append(all, s...)
				}
				if len(all) > 0 {
					sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
					idx := len(all) * 99 / 100
					if idx >= len(all) {
						idx = len(all) - 1
					}
					b.ReportMetric(float64(all[idx].Nanoseconds())/1e6, "p99-ms")
				}
			})
		}
	}
}

// BenchmarkPlayout measures a full simulated playout with the adaptation
// monitor attached (virtual minutes per wall-clock second).
func BenchmarkPlayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, doc := benchSystem(b, 1, 2)
		u := benchProfile()
		mach, _ := sys.Client("client-1")
		res, err := sys.NegotiateWith(context.Background(), mach, doc.ID, u)
		if err != nil || !res.Status.Reserved() {
			b.Fatalf("negotiate: %v %v", res.Status, err)
		}
		eng := sim.NewEngine()
		sys.Monitor().Attach(eng, 5*time.Second, func(adaptation.Report) {})
		var out session.Outcome
		if err := sys.Player(eng).Play(res.Session, doc, func(o session.Outcome) { out = o }); err != nil {
			b.Fatal(err)
		}
		eng.Run(10 * time.Minute)
		if out.State != core.Completed {
			b.Fatalf("playout %v", out.State)
		}
	}
}

// BenchmarkCMFSAdmission measures the disk-round admission test.
func BenchmarkCMFSAdmission(b *testing.B) {
	srv := cmfs.MustServer("s1", cmfs.DefaultConfig())
	n := qos.NetworkQoS{MaxBitRate: 4 * qos.MBitPerSecond, AvgBitRate: 2 * qos.MBitPerSecond}
	for i := 0; i < 10; i++ {
		srv.Reserve(n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Admit(n)
	}
}

// BenchmarkBookingReserve measures the future-reservation commitment (E14):
// an atomic three-resource booking against calendars holding many live
// bookings.
func BenchmarkBookingReserve(b *testing.B) {
	p := booking.NewPlanner()
	p.AddResource("server:server-1", booking.MustCalendar(1<<40))
	p.AddResource("server:server-2", booking.MustCalendar(1<<40))
	p.AddResource("link:client-1", booking.MustCalendar(1<<40))
	demands := []booking.Demand{
		{Resource: "server:server-1", Amount: 2_000_000},
		{Resource: "server:server-2", Amount: 1_400_000},
		{Resource: "link:client-1", Amount: 3_400_000},
	}
	// Pre-load the calendars with 256 staggered bookings.
	for i := 0; i < 256; i++ {
		start := time.Duration(i) * time.Minute
		if _, err := p.Reserve(start, start+30*time.Minute, demands); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Duration(i%256) * time.Minute
		plan, err := p.Reserve(start, start+30*time.Minute, demands)
		if err != nil {
			b.Fatal(err)
		}
		plan.Cancel()
	}
}

// BenchmarkE13Classifiers compares the classifier implementations on the
// same ranked offer set (the E13 ablation's inner loop).
func BenchmarkE13Classifiers(b *testing.B) {
	sys, doc := benchSystem(b, 1, 2)
	mach, _ := sys.Client("client-1")
	offers, err := offer.Enumerate(doc, mach, sys.Pricing, offer.EnumerateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	u := benchProfile()
	base := offer.Rank(offers, u)
	for _, cl := range []offer.Classifier{offer.SNSPrimary{}, offer.OIFOnly{}, offer.CostOnly{}, offer.QoSOnly{}} {
		cl := cl
		b.Run(cl.Name(), func(b *testing.B) {
			ranked := make([]offer.Ranked, len(base))
			for i := 0; i < b.N; i++ {
				copy(ranked, base)
				cl.Sort(ranked)
			}
		})
	}
}

// BenchmarkRenegotiate measures the reserved-session renegotiation round.
func BenchmarkRenegotiate(b *testing.B) {
	sys, doc := benchSystem(b, 1, 2)
	u := benchProfile()
	mach, _ := sys.Client("client-1")
	res, err := sys.NegotiateWith(context.Background(), mach, doc.ID, u)
	if err != nil || !res.Status.Reserved() {
		b.Fatalf("negotiate: %v %v", res.Status, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Manager.Renegotiate(res.Session.ID, u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamTopK compares the lazy best-first stream against a full
// sort when only the top offers are consumed (the common case: commitment
// succeeds on the first or second offer). 512-offer set from the E9
// synthetic document.
func BenchmarkStreamTopK(b *testing.B) {
	mach := client.Workstation("c1", "n1")
	doc := synthBenchDoc(3, 8) // 512 offers
	offers, err := offer.Enumerate(doc, mach, cost.DefaultPricing(), offer.EnumerateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	u := benchProfile()
	base := offer.Rank(offers, u)
	b.Run("full-sort", func(b *testing.B) {
		ranked := make([]offer.Ranked, len(base))
		for i := 0; i < b.N; i++ {
			copy(ranked, base)
			offer.SNSPrimary{}.Sort(ranked)
			_ = ranked[0]
		}
	})
	b.Run("stream-top3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := offer.NewStream(base, offer.SNSPrimary{})
			for k := 0; k < 3; k++ {
				s.Next()
			}
		}
	})
}

// BenchmarkE15Federation measures one brokered negotiation across three
// provider domains (negotiate in each, keep the best, release the rest).
func BenchmarkE15Federation(b *testing.B) {
	var domains []*domain.Domain
	var firstClient client.Machine
	for i := 0; i < 3; i++ {
		sys, err := New(WithClients(1), WithServers(2))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.AddNewsArticle("news-1", "A", 2*time.Minute); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			firstClient, _ = sys.Client("client-1")
		}
		domains = append(domains, &domain.Domain{
			Name:     fmt.Sprintf("provider-%d", i+1),
			Manager:  sys.Manager,
			Registry: sys.Registry,
		})
	}
	broker := domain.NewBroker(domains...)
	u := benchProfile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := broker.Negotiate(firstClient, "news-1", u)
		if err != nil {
			b.Fatal(err)
		}
		if res.Session != nil {
			for _, d := range domains {
				if d.Name == res.Domain {
					d.Manager.Reject(res.Session.ID)
				}
			}
		}
	}
}

// BenchmarkE16MonitorScan measures one adaptation-monitor sweep over a
// loaded system (the E16 study's inner loop).
func BenchmarkE16MonitorScan(b *testing.B) {
	sys, doc := benchSystem(b, 2, 2)
	u := benchProfile()
	for i := 0; i < 6; i++ {
		mach, _ := sys.Client(fmt.Sprintf("client-%d", i%2+1))
		res, err := sys.NegotiateWith(context.Background(), mach, doc.ID, u)
		if err != nil || !res.Status.Reserved() {
			break
		}
		sys.Manager.Confirm(res.Session.ID)
	}
	mon := sys.Monitor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Scan()
	}
}

// BenchmarkE18Replicate measures catalog replication (the E18 preparation
// step) for a three-server spread.
func BenchmarkE18Replicate(b *testing.B) {
	doc := synthBenchDoc(3, 8)
	servers := []media.ServerID{"server-1", "server-2", "server-3"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		media.Replicate(doc, servers, 3)
	}
}
